// Tests for diffusion-lint (tools/diffusion_lint): per-rule unit tests on
// inline snippets, the golden fixture suite, and the meta-check that the repo
// itself lints clean — the property CI enforces.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/diffusion_lint/lint.h"

namespace diffusion {
namespace lint {
namespace {

std::vector<std::string> RuleIds(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> ids;
  ids.reserve(diags.size());
  for (const Diagnostic& d : diags) {
    ids.push_back(d.rule_id);
  }
  return ids;
}

TEST(LintRulesTest, CatalogIsStable) {
  const std::vector<RuleInfo>& rules = Rules();
  ASSERT_EQ(rules.size(), 10u);
  EXPECT_STREQ(rules[0].id, "DL001");
  EXPECT_STREQ(rules[0].name, "wall-clock");
  EXPECT_STREQ(rules[5].id, "DL006");
  EXPECT_STREQ(rules[5].name, "filter-drop");
  EXPECT_STREQ(rules[6].id, "DL007");
  EXPECT_STREQ(rules[6].name, "pooled-body-cross-thread");
  EXPECT_STREQ(rules[9].id, "DL010");
  EXPECT_STREQ(rules[9].name, "thread-outside-sim");
}

TEST(LintRulesTest, WallClockFlaggedInSrcNotBench) {
  const std::string snippet = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(RuleIds(LintContent("src/sim/x.cc", snippet)),
            std::vector<std::string>{"DL001"});
  EXPECT_TRUE(LintContent("bench/x.cc", snippet).empty());
}

TEST(LintRulesTest, ScopeDirectiveOverridesPath) {
  const std::string bench_scoped =
      "// diffusion-lint: scope(bench)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(LintContent("nowhere.cc", bench_scoped).empty());
  // Without a directive, unknown paths get the strictest scope (src).
  EXPECT_EQ(RuleIds(LintContent("nowhere.cc",
                                "auto t = std::chrono::steady_clock::now();\n")),
            std::vector<std::string>{"DL001"});
}

TEST(LintRulesTest, CommentsAndStringsAreStripped) {
  const std::string snippet =
      "// rand() and new Foo() in a comment\n"
      "const char* s = \"std::random_device rd; time(nullptr)\";\n"
      "/* delete p; steady_clock::now(); */\n"
      "const char* r = R\"(srand(42))\";\n";
  EXPECT_TRUE(LintContent("src/x.cc", snippet).empty());
}

TEST(LintRulesTest, SuppressionByIdAndName) {
  const std::string by_id = "int r = rand();  // diffusion-lint: allow(DL002)\n";
  const std::string by_name =
      "// diffusion-lint: allow(unseeded-rng)\n"
      "int r = rand();\n";
  const std::string wrong_rule = "int r = rand();  // diffusion-lint: allow(DL001)\n";
  EXPECT_TRUE(LintContent("src/x.cc", by_id).empty());
  EXPECT_TRUE(LintContent("src/x.cc", by_name).empty());
  EXPECT_EQ(RuleIds(LintContent("src/x.cc", wrong_rule)),
            std::vector<std::string>{"DL002"});
}

TEST(LintRulesTest, UnorderedIterationIntoTraceSink) {
  const std::string bad =
      "std::unordered_map<int, int> counts;\n"
      "for (const auto& [k, v] : counts) {\n"
      "  sink.OnEvent(k, v);\n"
      "}\n";
  const std::string no_sink =
      "std::unordered_map<int, int> counts;\n"
      "for (const auto& [k, v] : counts) {\n"
      "  total += v;\n"
      "}\n";
  EXPECT_EQ(RuleIds(LintContent("src/x.cc", bad)), std::vector<std::string>{"DL003"});
  EXPECT_TRUE(LintContent("src/x.cc", no_sink).empty());
}

TEST(LintRulesTest, SiblingHeaderFeedsUnorderedAnalysis) {
  // The member is declared in the header; the .cc only iterates it. The
  // harvest from the sibling header must connect the two.
  const std::string header =
      "struct Collector {\n"
      "  std::unordered_map<int, int> per_node_;\n"
      "};\n";
  const std::string source =
      "void Collector::Flush() {\n"
      "  for (const auto& [k, v] : per_node_) {\n"
      "    sink.OnEvent(k, v);\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(RuleIds(LintContent("src/x.cc", source, header)),
            std::vector<std::string>{"DL003"});
  EXPECT_TRUE(LintContent("src/x.cc", source).empty());
}

TEST(LintRulesTest, IgnoredResultRequiresStatementContext) {
  const std::string bad = "node.Unsubscribe(h);\n";
  const std::string voided = "(void)node.Unsubscribe(h);\n";
  const std::string assigned = "ApiResult r = node.Unsubscribe(h);\n";
  const std::string asserted = "EXPECT_EQ(node.Unsubscribe(h), ApiResult::kOk);\n";
  EXPECT_EQ(RuleIds(LintContent("src/x.cc", bad)), std::vector<std::string>{"DL004"});
  EXPECT_TRUE(LintContent("src/x.cc", voided).empty());
  EXPECT_TRUE(LintContent("src/x.cc", assigned).empty());
  EXPECT_TRUE(LintContent("src/x.cc", asserted).empty());
}

TEST(LintRulesTest, RawNewDeleteExceptions) {
  EXPECT_EQ(RuleIds(LintContent("src/x.cc", "Foo* f = new Foo();\n")),
            std::vector<std::string>{"DL005"});
  EXPECT_TRUE(LintContent("src/x.cc", "Foo(const Foo&) = delete;\n").empty());
  EXPECT_TRUE(LintContent("src/util/arena.h", "char* p = new char[64];\n").empty());
  EXPECT_TRUE(
      LintContent("src/radio/region_mailbox.cc", "char* p = new char[64];\n").empty());
}

TEST(LintRulesTest, FilterCallbackMustSendOrDocumentDrop) {
  const std::string swallow =
      "node.AddFilter(a, 1, [](Message& m, FilterApi& api) {\n"
      "  m.hops++;\n"
      "});\n";
  const std::string documented =
      "// Deliberately drops everything.\n"
      "node.AddFilter(a, 1, [](Message& m, FilterApi& api) {\n"
      "  m.hops++;\n"
      "});\n";
  const std::string reinjects =
      "node.AddFilter(a, 1, [](Message& m, FilterApi& api) {\n"
      "  api.SendMessageToNext(std::move(m));\n"
      "});\n";
  EXPECT_EQ(RuleIds(LintContent("src/x.cc", swallow)), std::vector<std::string>{"DL006"});
  EXPECT_TRUE(LintContent("src/x.cc", documented).empty());
  EXPECT_TRUE(LintContent("src/x.cc", reinjects).empty());
}

TEST(LintRulesTest, PooledBodyInCrossThreadStruct) {
  const std::string bad =
      "struct BorderFrame {\n"
      "  BodyRef body;\n"
      "};\n";
  const std::string local_struct =
      "struct DeliveryRecord {\n"
      "  BodyRef body;\n"
      "};\n";
  // The flatten lives in the sibling .cc: evidence there clears the header.
  const std::string flatten_sibling =
      "void Pool::Post(const Fragment& fragment) {\n"
      "  out.body = BodyRef();\n"
      "  fragment.body->AppendBytes(&scratch);\n"
      "}\n";
  EXPECT_EQ(RuleIds(LintContent("src/x.h", bad)), std::vector<std::string>{"DL007"});
  EXPECT_TRUE(LintContent("src/x.h", local_struct).empty());
  EXPECT_TRUE(LintContent("src/x.h", bad, flatten_sibling).empty());
}

TEST(LintRulesTest, ConcurrentClassMembersMustDeclareProtection) {
  const std::string bad =
      "class Engine {\n"
      "  std::mutex mu_;\n"
      "  uint64_t windows_ = 0;\n"
      "};\n";
  const std::string annotated =
      "class Engine {\n"
      "  std::mutex mu_;\n"
      "  uint64_t generation_ DIFFUSION_GUARDED_BY(mu_) = 0;\n"
      "  std::vector<int> events_ DIFFUSION_REGION_PINNED;\n"
      "  uint64_t cursor_ DIFFUSION_BARRIER_OWNED = 0;\n"
      "  const unsigned threads_ = 1;\n"
      "  std::atomic<bool> stop_{false};\n"
      "};\n";
  const std::string no_primitive =
      "class Ledger {\n"
      "  uint64_t balance_ = 0;\n"
      "};\n";
  EXPECT_EQ(RuleIds(LintContent("src/x.h", bad)), std::vector<std::string>{"DL008"});
  EXPECT_TRUE(LintContent("src/x.h", annotated).empty());
  EXPECT_TRUE(LintContent("src/x.h", no_primitive).empty());
}

TEST(LintRulesTest, MailboxPostsWithOneSourceSymbol) {
  const std::string bad =
      "void Bridge::Run(int src_region, uint64_t sender) {\n"
      "  pool_.Post(src_region, 1, sender);\n"
      "  pool_.Post(0, 1, sender);\n"
      "}\n";
  const std::string single =
      "void Bridge::Run(int src_region, uint64_t sender) {\n"
      "  pool_.Post(src_region, 1, sender);\n"
      "  pool_.Post(src_region, 2, sender);\n"
      "}\n";
  const std::string not_a_mailbox =
      "void Bridge::Run(uint64_t sender) {\n"
      "  queue_.Post(1, sender);\n"
      "  queue_.Post(2, sender);\n"
      "}\n";
  EXPECT_EQ(RuleIds(LintContent("src/x.cc", bad)), std::vector<std::string>{"DL009"});
  EXPECT_TRUE(LintContent("src/x.cc", single).empty());
  EXPECT_TRUE(LintContent("src/x.cc", not_a_mailbox).empty());
}

TEST(LintRulesTest, ThreadCreationOnlyInsideSimCore) {
  const std::string spawn = "std::thread worker([] { Work(); });\n";
  const std::string pinned = "thread_local int counter = 0;\n";
  const std::string id_only = "std::thread::id owner = std::this_thread::get_id();\n";
  EXPECT_EQ(RuleIds(LintContent("src/radio/x.cc", spawn)),
            std::vector<std::string>{"DL010"});
  EXPECT_EQ(RuleIds(LintContent("src/radio/x.cc", pinned)),
            std::vector<std::string>{"DL010"});
  // The simulation core owns its workers; thread::id is a plain value.
  EXPECT_TRUE(LintContent("src/sim/engine.cc", spawn).empty());
  EXPECT_TRUE(LintContent("src/radio/x.cc", id_only).empty());
  EXPECT_TRUE(LintContent("bench/x.cc", spawn).empty());
}

TEST(LintRenderTest, StableFormat) {
  Diagnostic d;
  d.file = "src/x.cc";
  d.line = 7;
  d.rule_id = "DL001";
  d.rule_name = "wall-clock";
  d.message = "msg";
  EXPECT_EQ(Render(d), "src/x.cc:7: [DL001/wall-clock] msg");
}

// ---- golden fixture suite ----
//
// Every fixture file is linted under its bare name (so the golden stays
// stable across checkouts) and the concatenated rendered diagnostics must
// equal fixtures/expected.txt byte for byte.

TEST(LintFixturesTest, GoldenDiagnosticsMatch) {
  const std::filesystem::path dir(DIFFUSION_LINT_FIXTURES_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".cc" || entry.path().extension() == ".h") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());

  std::string actual;
  for (const auto& path : files) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    for (const Diagnostic& d : LintContent(path.filename().string(), buffer.str())) {
      actual += Render(d) + "\n";
    }
  }

  std::ifstream golden(dir / "expected.txt");
  ASSERT_TRUE(golden.good()) << "missing " << (dir / "expected.txt");
  std::stringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "fixture diagnostics drifted; regenerate with:\n"
         "  cd tools/diffusion_lint/fixtures && "
         "../../../build/tools/diffusion_lint *.cc > expected.txt";
}

TEST(LintFixturesTest, EveryRuleCoveredByFixtures) {
  const std::filesystem::path dir(DIFFUSION_LINT_FIXTURES_DIR);
  std::ifstream golden(dir / "expected.txt");
  ASSERT_TRUE(golden.good());
  std::stringstream buffer;
  buffer << golden.rdbuf();
  const std::string text = buffer.str();
  for (const RuleInfo& rule : Rules()) {
    EXPECT_NE(text.find(std::string("[") + rule.id + "/"), std::string::npos)
        << rule.id << " has no fixture violation";
  }
}

// ---- the property CI enforces: the repo itself lints clean ----

TEST(LintRepoTest, RepositoryIsClean) {
  const std::filesystem::path root(DIFFUSION_SOURCE_DIR);
  std::vector<std::string> roots;
  for (const char* sub : {"src", "bench", "tests", "examples"}) {
    roots.push_back((root / sub).string());
  }
  const std::vector<std::string> files = CollectSourceFiles(roots);
  ASSERT_GT(files.size(), 100u) << "source tree not found under " << root;

  std::vector<std::string> rendered;
  for (const std::string& file : files) {
    std::vector<Diagnostic> diags;
    ASSERT_TRUE(LintFile(file, &diags)) << file;
    for (const Diagnostic& d : diags) {
      rendered.push_back(Render(d));
    }
  }
  EXPECT_TRUE(rendered.empty()) << [&rendered] {
    std::string joined;
    for (const std::string& line : rendered) {
      joined += line + "\n";
    }
    return joined;
  }();
}

}  // namespace
}  // namespace lint
}  // namespace diffusion
