// Integration tests over the experiment runners: each pins the *qualitative*
// result the paper reports, on shortened windows so the suite stays fast.

#include <gtest/gtest.h>

#include "src/testbed/experiments.h"
#include "src/testbed/topology.h"

namespace diffusion {
namespace {

TEST(Fig8ExperimentTest, SingleSourceIdenticalWithAndWithoutSuppression) {
  Fig8Params params;
  params.sources = 1;
  params.duration = 5 * kMinute;
  params.seed = 7;
  params.suppression = true;
  const Fig8Result with = RunFig8(params);
  params.suppression = false;
  const Fig8Result without = RunFig8(params);
  // "Performance with one source is basically identical with and without
  // suppression" — identical here because the run is deterministic and the
  // filter has nothing to absorb.
  EXPECT_EQ(with.diffusion_bytes, without.diffusion_bytes);
  EXPECT_EQ(with.distinct_events, without.distinct_events);
}

TEST(Fig8ExperimentTest, SuppressionSavesTrafficAtFourSources) {
  Fig8Params params;
  params.sources = 4;
  params.duration = 10 * kMinute;
  params.seed = 7;
  params.suppression = true;
  const Fig8Result with = RunFig8(params);
  params.suppression = false;
  const Fig8Result without = RunFig8(params);
  EXPECT_GT(with.distinct_events, 50u);
  EXPECT_GT(with.suppressed, 0u);
  // The paper's headline: up to ~42% savings. Require at least 25% here.
  EXPECT_LT(with.bytes_per_event, without.bytes_per_event * 0.75)
      << with.bytes_per_event << " vs " << without.bytes_per_event;
}

TEST(Fig8ExperimentTest, TrafficGrowsWithSourcesWithoutSuppression) {
  Fig8Params params;
  params.duration = 10 * kMinute;
  params.seed = 11;
  params.suppression = false;
  params.sources = 1;
  const double one = RunFig8(params).bytes_per_event;
  params.sources = 4;
  const double four = RunFig8(params).bytes_per_event;
  EXPECT_GT(four, one * 2.0);  // paper: 990 -> 3289 (3.3x)
}

TEST(Fig8ExperimentTest, DeliveryInOperationalRange) {
  Fig8Params params;
  params.sources = 4;
  params.duration = 10 * kMinute;
  params.seed = 13;
  const Fig8Result result = RunFig8(params);
  EXPECT_GT(result.delivery_rate, 0.5);
  EXPECT_LE(result.delivery_rate, 1.0);
}

TEST(Fig9ExperimentTest, NestedBeatsFlatWithFourSensors) {
  Fig9Params params;
  params.lights = 4;
  params.duration = 10 * kMinute;
  params.seed = 23;
  params.mode = QueryMode::kNested;
  const Fig9Result nested = RunFig9(params);
  params.mode = QueryMode::kFlat;
  const Fig9Result flat = RunFig9(params);
  EXPECT_GE(nested.delivered_fraction, flat.delivered_fraction);
  // "This experiment sharply contrasts the bandwidth requirements": the flat
  // query hauls light reports across the whole network.
  EXPECT_GT(flat.diffusion_bytes, nested.diffusion_bytes * 12 / 10);
}

TEST(Fig9ExperimentTest, DeliveryFallsAsSensorsAreAdded) {
  Fig9Params params;
  params.duration = 10 * kMinute;
  params.seed = 29;
  params.mode = QueryMode::kNested;
  params.lights = 1;
  const Fig9Result one = RunFig9(params);
  params.lights = 4;
  const Fig9Result four = RunFig9(params);
  EXPECT_GT(one.delivered_fraction, 0.6);
  EXPECT_LT(four.delivered_fraction, one.delivered_fraction + 0.01);
}

TEST(Fig9ExperimentTest, TriggeredVariantSendsTriggers) {
  Fig9Params params;
  params.lights = 2;
  params.duration = 5 * kMinute;
  params.seed = 31;
  params.mode = QueryMode::kFlatTriggered;
  const Fig9Result result = RunFig9(params);
  EXPECT_GT(result.triggers_sent, 0u);
}

TEST(ScaleExperimentTest, SuppressionHelpsMoreAtHigherDataShare) {
  ScaleParams params;
  params.nodes = 30;
  params.duration = 3 * kMinute;
  params.seed = 5;

  // 1:10-like configuration.
  params.event_interval = 6 * kSecond;
  params.exploratory_every = 10;
  params.suppression = true;
  const double low_with = RunScaleExperiment(params).bytes_per_event;
  params.suppression = false;
  const double low_without = RunScaleExperiment(params).bytes_per_event;

  // 1:100-like configuration.
  params.event_interval = 500 * kMillisecond;
  params.exploratory_every = 100;
  params.suppression = true;
  const double high_with = RunScaleExperiment(params).bytes_per_event;
  params.suppression = false;
  const double high_without = RunScaleExperiment(params).bytes_per_event;

  ASSERT_GT(low_with, 0.0);
  ASSERT_GT(high_with, 0.0);
  const double low_factor = low_without / low_with;
  const double high_factor = high_without / high_with;
  EXPECT_GT(low_factor, 1.0);
  EXPECT_GT(high_factor, 1.0);
  // The paper's argument: savings grow when data dominates exploratory
  // floods (1.7x at 1:10 vs 3-5x at 1:100).
  EXPECT_GT(high_factor, low_factor * 0.9);
}

TEST(GeoExperimentTest, ScopingPrunesAndSavesTraffic) {
  GeoParams params;
  params.duration = 5 * kMinute;
  params.seed = 3;
  params.geo_scope = false;
  const GeoResult off = RunGeoExperiment(params);
  params.geo_scope = true;
  const GeoResult on = RunGeoExperiment(params);
  EXPECT_EQ(off.interests_pruned, 0u);
  EXPECT_GT(on.interests_pruned, 0u);
  EXPECT_LT(on.bytes_per_event, off.bytes_per_event);
  EXPECT_GT(on.delivery_rate, 0.4);
}

TEST(ExperimentDeterminismTest, SameSeedSameResult) {
  Fig8Params params;
  params.sources = 2;
  params.duration = 3 * kMinute;
  params.seed = 77;
  const Fig8Result a = RunFig8(params);
  const Fig8Result b = RunFig8(params);
  EXPECT_EQ(a.diffusion_bytes, b.diffusion_bytes);
  EXPECT_EQ(a.distinct_events, b.distinct_events);
  params.seed = 78;
  const Fig8Result c = RunFig8(params);
  EXPECT_NE(a.diffusion_bytes, c.diffusion_bytes);
}

}  // namespace
}  // namespace diffusion
