// Integration tests for the diffusion core: interests, gradients,
// exploratory data, reinforcement, the publish/subscribe API, and failure
// recovery.

#include <gtest/gtest.h>

#include "src/core/data_cache.h"
#include "src/core/gradient_table.h"
#include "src/core/message.h"
#include "src/core/node.h"
#include "src/naming/keys.h"
#include "src/naming/matching.h"
#include "tests/test_util.h"

namespace diffusion {
namespace {

using testing_support::FastRadio;
using testing_support::MakeCliqueChannel;
using testing_support::MakeLineChannel;

AttributeVector LightQuery() {
  return {
      ClassEq(kClassData),
      Attribute::String(kKeyType, AttrOp::kEq, "light"),
  };
}

AttributeVector LightPublication() {
  return {Attribute::String(kKeyType, AttrOp::kIs, "light")};
}

AttributeVector Reading(int32_t value) {
  return {Attribute::Int32(kKeySequence, AttrOp::kIs, value)};
}

int32_t SequenceOf(const AttributeVector& attrs) {
  const Attribute* attr = FindActual(attrs, kKeySequence);
  if (attr == nullptr) {
    return -1;
  }
  return static_cast<int32_t>(attr->AsInt().value_or(-1));
}

// ---- Message ----

TEST(MessageTest, SerializeRoundTrip) {
  Message message;
  message.type = MessageType::kExploratoryData;
  message.origin = 17;
  message.origin_seq = 42;
  message.ttl = 9;
  message.attrs = LightPublication();
  const auto bytes = message.Serialize();
  EXPECT_EQ(bytes.size(), message.WireSize());
  const auto round = Message::Deserialize(bytes);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->type, MessageType::kExploratoryData);
  EXPECT_EQ(round->origin, 17u);
  EXPECT_EQ(round->origin_seq, 42u);
  EXPECT_EQ(round->ttl, 9);
  EXPECT_EQ(round->attrs, message.attrs);
}

TEST(MessageTest, PacketIdCombinesOriginAndSeq) {
  Message a;
  a.origin = 1;
  a.origin_seq = 2;
  Message b;
  b.origin = 2;
  b.origin_seq = 1;
  EXPECT_NE(a.PacketId(), b.PacketId());
}

TEST(MessageTest, DeserializeRejectsBadType) {
  Message message;
  message.attrs = {};
  auto bytes = message.Serialize();
  bytes[0] = 99;
  EXPECT_EQ(Message::Deserialize(bytes), std::nullopt);
}

// ---- DataCache ----

TEST(DataCacheTest, DetectsDuplicates) {
  DataCache cache(8);
  EXPECT_FALSE(cache.CheckAndInsert(1));
  EXPECT_TRUE(cache.CheckAndInsert(1));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(DataCacheTest, EvictsFifoAtCapacity) {
  DataCache cache(3);
  cache.CheckAndInsert(1);
  cache.CheckAndInsert(2);
  cache.CheckAndInsert(3);
  cache.CheckAndInsert(4);  // evicts 1
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_FALSE(cache.CheckAndInsert(1));  // 1 may be reinserted
}

TEST(DataCacheTest, SetAndOrderStayInLockStep) {
  // Regression: evict-then-reinsert churn could desync the membership set
  // from the FIFO order (a stale order record evicting a live re-inserted
  // id), inflating duplicate counts. The tick-stamped eviction keeps both
  // structures the same size with matching records.
  DataCache cache(4);
  // Heavy churn: reinsert evicted ids, interleave fresh ones, duplicate hits.
  for (uint64_t round = 0; round < 200; ++round) {
    cache.CheckAndInsert(round % 7);        // cycles through eviction
    cache.CheckAndInsert(1000 + round);     // always fresh
    cache.CheckAndInsert(round % 3);        // frequent duplicates + reinserts
    ASSERT_EQ(cache.size(), cache.order_size()) << "round " << round;
    ASSERT_TRUE(cache.ConsistencyCheck()) << "round " << round;
    ASSERT_LE(cache.size(), cache.capacity() + 1);
  }
  // A re-inserted id survives the eviction of its stale epoch.
  DataCache small(2);
  EXPECT_FALSE(small.CheckAndInsert(1));
  EXPECT_FALSE(small.CheckAndInsert(2));
  EXPECT_FALSE(small.CheckAndInsert(3));  // evicts 1
  EXPECT_FALSE(small.CheckAndInsert(1));  // re-inserted
  EXPECT_TRUE(small.CheckAndInsert(1));   // still present: a duplicate
  EXPECT_TRUE(small.ConsistencyCheck());
}

// ---- GradientTable ----

TEST(GradientTableTest, ExactMatchLookup) {
  GradientTable table;
  const AttributeVector attrs = LightQuery();
  EXPECT_EQ(table.FindExact(attrs), nullptr);
  InterestEntry& entry = table.InsertOrRefresh(attrs, 100);
  EXPECT_EQ(table.FindExact(attrs), &entry);
  // Order-insensitive.
  AttributeVector reversed = {attrs[1], attrs[0]};
  EXPECT_EQ(table.FindExact(reversed), &entry);
  EXPECT_EQ(table.size(), 1u);
  table.InsertOrRefresh(attrs, 200);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(entry.expires, 200);
}

TEST(GradientTableTest, MatchDataFindsCompatibleInterests) {
  GradientTable table;
  table.InsertOrRefresh(LightQuery(), 100);
  AttributeVector data = LightPublication();
  data.push_back(ClassIs(kClassData));
  EXPECT_EQ(table.MatchData(data).size(), 1u);
  AttributeVector other = {Attribute::String(kKeyType, AttrOp::kIs, "audio"),
                           ClassIs(kClassData)};
  EXPECT_TRUE(table.MatchData(other).empty());
}

TEST(GradientTableTest, GradientRefreshAndExpiry) {
  GradientTable table;
  InterestEntry& entry = table.InsertOrRefresh(LightQuery(), 100);
  entry.AddOrRefreshGradient(7, 50);
  entry.AddOrRefreshGradient(8, 150);
  entry.AddOrRefreshGradient(7, 80);  // refresh extends
  ASSERT_EQ(entry.gradients.size(), 2u);
  entry.ExpireGradients(81);
  ASSERT_EQ(entry.gradients.size(), 1u);
  EXPECT_EQ(entry.gradients[0].neighbor, 8u);
}

TEST(GradientTableTest, ReinforcementFlagDecays) {
  GradientTable table;
  InterestEntry& entry = table.InsertOrRefresh(LightQuery(), 1000);
  Gradient& gradient = entry.AddOrRefreshGradient(7, 1000);
  gradient.reinforced = true;
  gradient.reinforced_until = 100;
  EXPECT_TRUE(entry.HasReinforcedGradient());
  entry.ExpireGradients(101);
  EXPECT_FALSE(entry.HasReinforcedGradient());
  ASSERT_EQ(entry.gradients.size(), 1u);  // gradient itself survives
}

TEST(GradientTableTest, ExpireKeepsLocalEntries) {
  GradientTable table;
  InterestEntry& local = table.InsertOrRefresh(LightQuery(), 10);
  local.is_local = true;
  table.InsertOrRefresh({ClassEq(kClassData)}, 10);
  table.Expire(100);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.entries().front().is_local);
}

TEST(GradientTableTest, RemoveLocal) {
  GradientTable table;
  InterestEntry& local = table.InsertOrRefresh(LightQuery(), 10);
  local.is_local = true;
  EXPECT_FALSE(table.RemoveLocal({ClassEq(kClassData)}));
  EXPECT_TRUE(table.RemoveLocal(LightQuery()));
  EXPECT_EQ(table.size(), 0u);
}

// ---- End-to-end pub/sub ----

class TwoNodeTest : public ::testing::Test {
 protected:
  TwoNodeTest()
      : sim_(12345),
        channel_(MakeCliqueChannel(&sim_, 2)),
        sink_(&sim_, channel_.get(), 1, NodeOptions{.radio = FastRadio()}),
        source_(&sim_, channel_.get(), 2, NodeOptions{.radio = FastRadio()}) {}

  Simulator sim_;
  std::unique_ptr<Channel> channel_;
  DiffusionNode sink_;
  DiffusionNode source_;
};

TEST_F(TwoNodeTest, DataFlowsToSubscriber) {
  std::vector<int32_t> received;
  (void)sink_.Subscribe(LightQuery(),
                  [&](const AttributeVector& attrs) { received.push_back(SequenceOf(attrs)); });
  const PublicationHandle pub = source_.Publish(LightPublication());
  sim_.RunUntil(kSecond);  // let the interest propagate
  for (int i = 0; i < 5; ++i) {
    sim_.After(i * 100 * kMillisecond, [&, i] { (void)source_.Send(pub, Reading(i)); });
  }
  sim_.RunUntil(10 * kSecond);
  EXPECT_EQ(received, (std::vector<int32_t>{0, 1, 2, 3, 4}));
}

TEST_F(TwoNodeTest, NoSubscriptionMeansDataStaysLocal) {
  const PublicationHandle pub = source_.Publish(LightPublication());
  sim_.RunUntil(kSecond);
  EXPECT_EQ(source_.Send(pub, Reading(1)), ApiResult::kNoMatchingInterest);
  EXPECT_EQ(source_.stats().data_originated, 0u);
  EXPECT_EQ(source_.radio().stats().messages_sent, 0u);
}

TEST_F(TwoNodeTest, NonMatchingDataNotDelivered) {
  int received = 0;
  (void)sink_.Subscribe(LightQuery(), [&](const AttributeVector&) { ++received; });
  const PublicationHandle pub =
      source_.Publish({Attribute::String(kKeyType, AttrOp::kIs, "audio")});
  sim_.RunUntil(kSecond);
  EXPECT_EQ(source_.Send(pub, Reading(1)), ApiResult::kNoMatchingInterest);
  sim_.RunUntil(5 * kSecond);
  EXPECT_EQ(received, 0);
}

TEST_F(TwoNodeTest, UnsubscribeStopsDelivery) {
  int received = 0;
  const SubscriptionHandle sub =
      sink_.Subscribe(LightQuery(), [&](const AttributeVector&) { ++received; });
  const PublicationHandle pub = source_.Publish(LightPublication());
  sim_.RunUntil(kSecond);
  (void)source_.Send(pub, Reading(1));
  sim_.RunUntil(2 * kSecond);
  EXPECT_EQ(received, 1);
  (void)sink_.Unsubscribe(sub);
  // After the remote gradient expires, data no longer leaves the source.
  sim_.RunUntil(10 * kMinute);
  const uint64_t before = source_.stats().data_originated;
  (void)source_.Send(pub, Reading(2));
  sim_.RunUntil(11 * kMinute);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(source_.stats().data_originated, before);
}

TEST_F(TwoNodeTest, SubscribeForSubscriptions) {
  // §4.1: "the application would subscribe for subscriptions and would be
  // informed when subscriptions arrive."
  int interests_seen = 0;
  AttributeVector watch = LightPublication();
  watch.push_back(ClassIs(kClassData));
  watch.push_back(ClassEq(kClassInterest));
  (void)source_.Subscribe(watch, [&](const AttributeVector&) { ++interests_seen; });
  EXPECT_EQ(source_.stats().interests_originated, 0u);  // meta-subs don't flood
  (void)sink_.Subscribe(LightQuery(), [](const AttributeVector&) {});
  sim_.RunUntil(kSecond);
  EXPECT_EQ(interests_seen, 1);
  // Interest refreshes are new packets and are seen again.
  sim_.RunUntil(kSecond + 65 * kSecond);
  EXPECT_EQ(interests_seen, 2);
}

TEST_F(TwoNodeTest, LocalDeliveryOnSameNode) {
  int received = 0;
  (void)sink_.Subscribe(LightQuery(), [&](const AttributeVector&) { ++received; });
  const PublicationHandle pub = sink_.Publish(LightPublication());
  sim_.RunUntil(100 * kMillisecond);
  EXPECT_EQ(sink_.Send(pub, Reading(1)), ApiResult::kOk);
  sim_.RunUntil(200 * kMillisecond);
  EXPECT_EQ(received, 1);
}

TEST_F(TwoNodeTest, InterestRefreshKeepsGradientsAlive) {
  std::vector<int32_t> received;
  (void)sink_.Subscribe(LightQuery(),
                  [&](const AttributeVector& attrs) { received.push_back(SequenceOf(attrs)); });
  const PublicationHandle pub = source_.Publish(LightPublication());
  sim_.RunUntil(kSecond);
  // Send an event every 10 s for 10 minutes — far past the gradient
  // lifetime, so only refreshes keep the path alive.
  for (int i = 0; i < 60; ++i) {
    sim_.After(i * 10 * kSecond, [&, i] { (void)source_.Send(pub, Reading(i)); });
  }
  sim_.RunUntil(11 * kMinute);
  EXPECT_GT(received.size(), 55u);
}

// ---- Multi-hop ----

class LineTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 5;

  LineTest() : sim_(777), channel_(MakeLineChannel(&sim_, kNodes)) {
    for (NodeId id = 1; id <= kNodes; ++id) {
      nodes_.push_back(
          std::make_unique<DiffusionNode>(&sim_, channel_.get(), id, NodeOptions{.radio = FastRadio()}));
    }
  }

  DiffusionNode& node(NodeId id) { return *nodes_[id - 1]; }

  Simulator sim_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<DiffusionNode>> nodes_;
};

TEST_F(LineTest, InterestFloodsAllHops) {
  (void)node(1).Subscribe(LightQuery(), [](const AttributeVector&) {});
  sim_.RunUntil(5 * kSecond);
  for (NodeId id = 2; id <= kNodes; ++id) {
    EXPECT_NE(node(id).gradients().FindExact(
                  [&] {
                    AttributeVector attrs = LightQuery();
                    attrs.push_back(ClassIs(kClassInterest));
                    return attrs;
                  }()),
              nullptr)
        << "node " << id << " missing interest entry";
  }
}

TEST_F(LineTest, DataCrossesFourHops) {
  std::vector<int32_t> received;
  (void)node(1).Subscribe(LightQuery(),
                    [&](const AttributeVector& attrs) { received.push_back(SequenceOf(attrs)); });
  const PublicationHandle pub = node(kNodes).Publish(LightPublication());
  sim_.RunUntil(2 * kSecond);
  for (int i = 0; i < 10; ++i) {
    sim_.After(i * kSecond, [&, i] { (void)node(kNodes).Send(pub, Reading(i)); });
  }
  sim_.RunUntil(30 * kSecond);
  // The first message is exploratory and establishes the path; everything
  // (or nearly everything) should arrive on a loss-free line.
  EXPECT_GE(received.size(), 9u);
  EXPECT_EQ(received.front(), 0);
}

TEST_F(LineTest, ReinforcementMarksPath) {
  (void)node(1).Subscribe(LightQuery(), [](const AttributeVector&) {});
  const PublicationHandle pub = node(kNodes).Publish(LightPublication());
  sim_.RunUntil(2 * kSecond);
  (void)node(kNodes).Send(pub, Reading(0));  // exploratory
  sim_.RunUntil(10 * kSecond);
  // Every intermediate node should now have a reinforced gradient toward
  // the sink side.
  AttributeVector interest_attrs = LightQuery();
  interest_attrs.push_back(ClassIs(kClassInterest));
  for (NodeId id = 2; id <= kNodes; ++id) {
    InterestEntry* entry = node(id).gradients().FindExact(interest_attrs);
    ASSERT_NE(entry, nullptr) << "node " << id;
    EXPECT_TRUE(entry->HasReinforcedGradient()) << "node " << id;
    Gradient* toward_sink = entry->FindGradient(id - 1);
    ASSERT_NE(toward_sink, nullptr) << "node " << id;
    EXPECT_TRUE(toward_sink->reinforced) << "node " << id;
  }
  // Regular data is unicast along the path, not flooded: each hop forwards
  // exactly once.
  const uint64_t forwarded_before = node(3).stats().messages_forwarded;
  (void)node(kNodes).Send(pub, Reading(1));
  sim_.RunUntil(12 * kSecond);
  EXPECT_EQ(node(3).stats().messages_forwarded, forwarded_before + 1);
}

TEST_F(LineTest, DuplicateFloodCopiesSuppressed) {
  (void)node(1).Subscribe(LightQuery(), [](const AttributeVector&) {});
  sim_.RunUntil(5 * kSecond);
  // Each node hears the interest from both line neighbors but re-floods
  // once; the second copy is a duplicate.
  EXPECT_GT(node(3).stats().duplicates_suppressed, 0u);
}

TEST_F(LineTest, PathRepairAfterNodeDeath) {
  std::vector<int32_t> received;
  (void)node(1).Subscribe(LightQuery(),
                    [&](const AttributeVector& attrs) { received.push_back(SequenceOf(attrs)); });
  const PublicationHandle pub = node(kNodes).Publish(LightPublication());
  sim_.RunUntil(2 * kSecond);
  // This line has no alternate path, so test repair on a clique overlay:
  // kill an intermediate node and verify delivery resumes once interests
  // re-flood (the line reroutes through... nothing — so instead verify that
  // traffic stops, which is the honest expectation here).
  (void)node(kNodes).Send(pub, Reading(0));
  sim_.RunUntil(4 * kSecond);
  ASSERT_EQ(received.size(), 1u);
  node(3).Kill();
  (void)node(kNodes).Send(pub, Reading(1));
  sim_.RunUntil(8 * kSecond);
  EXPECT_EQ(received.size(), 1u);  // severed line: nothing arrives
}

// Path repair with a real alternate route: a diamond 1-{2,3}-4.
TEST(DiamondTest, ReroutesAroundDeadNode) {
  Simulator sim(4242);
  auto topology = std::make_unique<ExplicitTopology>();
  topology->AddSymmetricLink(1, 2);
  topology->AddSymmetricLink(1, 3);
  topology->AddSymmetricLink(2, 4);
  topology->AddSymmetricLink(3, 4);
  auto channel = std::make_unique<Channel>(&sim, std::move(topology));

  DiffusionConfig config;
  std::vector<std::unique_ptr<DiffusionNode>> nodes;
  for (NodeId id = 1; id <= 4; ++id) {
    nodes.push_back(
        std::make_unique<DiffusionNode>(&sim, channel.get(), id, NodeOptions{.diffusion = config, .radio = FastRadio()}));
  }
  std::vector<int32_t> received;
  (void)nodes[0]->Subscribe(LightQuery(),
                      [&](const AttributeVector& attrs) { received.push_back(SequenceOf(attrs)); });
  const PublicationHandle pub = nodes[3]->Publish(LightPublication());
  sim.RunUntil(2 * kSecond);

  // Events every 6 s; every 10th is exploratory (paper cadence).
  int sent = 0;
  std::function<void()> tick = [&] {
    if (sent < 100) {
      (void)nodes[3]->Send(pub, Reading(sent++));
      sim.After(6 * kSecond, tick);
    }
  };
  sim.After(0, tick);
  sim.RunUntil(100 * kSecond);
  const size_t before_kill = received.size();
  EXPECT_GT(before_kill, 10u);

  // Kill whichever middle node is on the reinforced path; both are
  // candidates, so kill node 2 and let exploratory data re-establish a path
  // through node 3 (or confirm it already runs through 3).
  nodes[1]->Kill();
  sim.RunUntil(400 * kSecond);
  const size_t after_kill = received.size();
  // Deliveries must resume: at one event per 6 s over 300 s, expect dozens
  // of new events even allowing a repair gap of an exploratory period.
  EXPECT_GT(after_kill, before_kill + 20u);
}

TEST(CliqueScaleTest, ManySubscribersAllReceive) {
  Simulator sim(99);
  auto channel = MakeCliqueChannel(&sim, 6);
  std::vector<std::unique_ptr<DiffusionNode>> nodes;
  for (NodeId id = 1; id <= 6; ++id) {
    nodes.push_back(std::make_unique<DiffusionNode>(&sim, channel.get(), id, NodeOptions{.radio = FastRadio()}));
  }
  std::vector<int> counts(6, 0);
  for (size_t i = 0; i < 5; ++i) {
    (void)nodes[i]->Subscribe(LightQuery(), [&counts, i](const AttributeVector&) { ++counts[i]; });
  }
  const PublicationHandle pub = nodes[5]->Publish(LightPublication());
  sim.RunUntil(2 * kSecond);
  for (int i = 0; i < 5; ++i) {
    sim.After(i * kSecond, [&, i] { (void)nodes[5]->Send(pub, Reading(i)); });
  }
  sim.RunUntil(60 * kSecond);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_GE(counts[i], 4) << "subscriber " << i;
  }
}

TEST(NeighborsTest, TracksHeardNodes) {
  Simulator sim(5);
  auto channel = MakeCliqueChannel(&sim, 3);
  DiffusionNode a(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode b(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  DiffusionNode c(&sim, channel.get(), 3, NodeOptions{.radio = FastRadio()});
  (void)a.Subscribe(LightQuery(), [](const AttributeVector&) {});
  sim.RunUntil(5 * kSecond);
  const auto neighbors_b = b.Neighbors();
  EXPECT_NE(std::find(neighbors_b.begin(), neighbors_b.end(), 1u), neighbors_b.end());
}

}  // namespace
}  // namespace diffusion
