// Tests for the reliable blob transfer (§3.1's retransmission scheme for
// large, persistent data objects).

#include <gtest/gtest.h>

#include "src/apps/blob_transfer.h"
#include "src/core/node.h"
#include "tests/test_util.h"

namespace diffusion {
namespace {

using testing_support::FastRadio;
using testing_support::MakeLineChannel;

std::vector<uint8_t> MakeObject(size_t size) {
  std::vector<uint8_t> object(size);
  for (size_t i = 0; i < size; ++i) {
    object[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  return object;
}

class BlobTest : public ::testing::Test {
 protected:
  BlobTest() : sim_(91), channel_(MakeLineChannel(&sim_, 3)) {
    DiffusionConfig config;
    config.exploratory_every = 3;
    for (NodeId id = 1; id <= 3; ++id) {
      nodes_.push_back(
          std::make_unique<DiffusionNode>(&sim_, channel_.get(), id, NodeOptions{.diffusion = config, .radio = FastRadio()}));
    }
  }

  Simulator sim_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<DiffusionNode>> nodes_;
};

TEST_F(BlobTest, TransfersObjectOverCleanLink) {
  const std::vector<uint8_t> object = MakeObject(1000);
  BlobSender sender(nodes_[2].get(), /*object_id=*/7, object);
  EXPECT_EQ(sender.chunk_count(), 16u);  // ceil(1000/64)

  BlobReceiver receiver(nodes_[0].get(), 7);
  std::vector<uint8_t> delivered;
  receiver.Start([&delivered](const std::vector<uint8_t>& data) { delivered = data; });
  sim_.RunUntil(kSecond);
  sender.Start();
  sim_.RunUntil(2 * kMinute);

  EXPECT_TRUE(receiver.complete());
  EXPECT_EQ(delivered, object);
  EXPECT_TRUE(receiver.MissingSpans().empty());
}

TEST_F(BlobTest, EmptyObjectStillCompletes) {
  BlobSender sender(nodes_[2].get(), 8, {});
  EXPECT_EQ(sender.chunk_count(), 1u);
  BlobReceiver receiver(nodes_[0].get(), 8);
  bool done = false;
  receiver.Start([&done](const std::vector<uint8_t>& data) {
    done = true;
    EXPECT_TRUE(data.empty());
  });
  sim_.RunUntil(kSecond);
  sender.Start();
  sim_.RunUntil(kMinute);
  EXPECT_TRUE(done);
}

TEST_F(BlobTest, SenderWaitsForInterestBeforeDelivering) {
  // Start the sender first: chunks cannot leave the node ("published data
  // does not leave the node") and stay queued until the interest arrives.
  const std::vector<uint8_t> object = MakeObject(300);
  BlobSender sender(nodes_[2].get(), 9, object);
  sender.Start();
  sim_.RunUntil(10 * kSecond);
  EXPECT_EQ(nodes_[2]->stats().data_originated, 0u);

  BlobReceiver receiver(nodes_[0].get(), 9);
  std::vector<uint8_t> delivered;
  receiver.Start([&delivered](const std::vector<uint8_t>& data) { delivered = data; });
  sim_.RunUntil(3 * kMinute);
  EXPECT_EQ(delivered, object);
}

TEST_F(BlobTest, RepairsLossesFromTransientOutage) {
  // Sever the middle of the line partway through the initial transmission;
  // the receiver's range-scoped repair interests recover the gap.
  const std::vector<uint8_t> object = MakeObject(2000);  // 32 chunks, ~8 s paced
  BlobSender sender(nodes_[2].get(), 10, object);
  BlobReceiverConfig rconfig;
  rconfig.repair_delay = 5 * kSecond;
  BlobReceiver receiver(nodes_[0].get(), 10, rconfig);
  std::vector<uint8_t> delivered;
  receiver.Start([&delivered](const std::vector<uint8_t>& data) { delivered = data; });
  sim_.RunUntil(kSecond);
  sender.Start();

  // Kill the relay for a few seconds mid-transfer.
  sim_.After(2 * kSecond, [this] { nodes_[1]->Kill(); });
  sim_.After(6 * kSecond, [this] { nodes_[1]->Revive(); });

  sim_.RunUntil(5 * kMinute);
  EXPECT_TRUE(receiver.complete());
  EXPECT_EQ(delivered, object);
  EXPECT_GT(receiver.repair_rounds(), 0);
  EXPECT_GT(sender.repair_requests(), 0u);
}

TEST_F(BlobTest, MissingSpansReportsGaps) {
  BlobReceiver receiver(nodes_[0].get(), 11);
  // Before anything arrives the total is unknown: no spans.
  EXPECT_TRUE(receiver.MissingSpans().empty());
}

TEST_F(BlobTest, MaxRepairRoundsBoundsEffort) {
  // No sender at all: the receiver gives up after the configured rounds.
  BlobReceiverConfig config;
  config.repair_delay = kSecond;
  config.max_repair_rounds = 3;
  BlobReceiver receiver(nodes_[0].get(), 12, config);
  receiver.Start([](const std::vector<uint8_t>&) { FAIL() << "nothing should complete"; });
  sim_.RunUntil(kMinute);
  EXPECT_FALSE(receiver.complete());
  EXPECT_EQ(receiver.repair_rounds(), 3);
}

TEST_F(BlobTest, RepairInterestRangesSelectChunksByMatching) {
  // Drive the sender's filter directly with a crafted repair interest and
  // observe that exactly the requested chunks are (re)transmitted.
  const std::vector<uint8_t> object = MakeObject(640);  // 10 chunks
  BlobSender sender(nodes_[2].get(), 13, object);
  // A receiver creates demand so chunks can flow.
  BlobReceiver receiver(nodes_[0].get(), 13);
  std::vector<uint8_t> delivered;
  receiver.Start([&delivered](const std::vector<uint8_t>& data) { delivered = data; });
  sim_.RunUntil(kSecond);
  sender.Start();
  sim_.RunUntil(2 * kMinute);
  ASSERT_TRUE(receiver.complete());
  const uint64_t sent_before = sender.chunks_sent();

  // Craft a second receiver's repair interest for chunks 3..5 only.
  AttributeVector repair = {
      ClassEq(kClassData),
      Attribute::String(kKeyType, AttrOp::kEq, kTypeBlob),
      Attribute::Int32(kKeyBlobId, AttrOp::kEq, 13),
      Attribute::Int32(kKeyBlobChunk, AttrOp::kGe, 3),
      Attribute::Int32(kKeyBlobChunk, AttrOp::kLe, 5),
      Attribute::String(kKeyType, AttrOp::kIs, kTypeBlob),
      Attribute::Int32(kKeyBlobId, AttrOp::kIs, 13),
  };
  int repair_chunks = 0;
  const SubscriptionHandle repair_handle =
      nodes_[0]->Subscribe(repair, [&repair_chunks](const AttributeVector& attrs) {
        const Attribute* chunk = FindActual(attrs, kKeyBlobChunk);
        const int64_t index = chunk->AsInt().value_or(-1);
        EXPECT_GE(index, 3);
        EXPECT_LE(index, 5);
        ++repair_chunks;
      });
  sim_.RunUntil(3 * kMinute);
  // Only the requested span is retransmitted (the callback asserts every
  // delivered index is within [3, 5]), possibly several times as the
  // standing subscription refreshes.
  EXPECT_GE(sender.chunks_sent(), sent_before + 3);
  EXPECT_GE(repair_chunks, 3);
  (void)nodes_[0]->Unsubscribe(repair_handle);
  // With the subscription gone and its gradients expiring, retransmissions
  // wind down (at most one refresh-worth still in flight).
  sim_.RunUntil(4 * kMinute);
  const uint64_t sent_after_unsub = sender.chunks_sent();
  sim_.RunUntil(13 * kMinute);
  EXPECT_LE(sender.chunks_sent(), sent_after_unsub + 6);
}

}  // namespace
}  // namespace diffusion
