// Tests for attribute tuples: construction, accessors, serialization.

#include <gtest/gtest.h>

#include "src/naming/attribute.h"
#include "src/naming/keys.h"
#include "src/util/rng.h"

namespace diffusion {
namespace {

TEST(AttributeTest, FactoriesSetTypes) {
  EXPECT_EQ(Attribute::Int32(1, AttrOp::kIs, 5).type(), AttrType::kInt32);
  EXPECT_EQ(Attribute::Int64(1, AttrOp::kIs, 5).type(), AttrType::kInt64);
  EXPECT_EQ(Attribute::Float32(1, AttrOp::kIs, 5.f).type(), AttrType::kFloat32);
  EXPECT_EQ(Attribute::Float64(1, AttrOp::kIs, 5.0).type(), AttrType::kFloat64);
  EXPECT_EQ(Attribute::String(1, AttrOp::kIs, "x").type(), AttrType::kString);
  EXPECT_EQ(Attribute::Blob(1, AttrOp::kIs, {1}).type(), AttrType::kBlob);
}

TEST(AttributeTest, ActualVersusFormal) {
  EXPECT_TRUE(Attribute::Int32(1, AttrOp::kIs, 5).IsActual());
  for (AttrOp op : {AttrOp::kEq, AttrOp::kNe, AttrOp::kLe, AttrOp::kGe, AttrOp::kLt, AttrOp::kGt,
                    AttrOp::kEqAny}) {
    EXPECT_TRUE(Attribute::Int32(1, op, 5).IsFormal()) << AttrOpName(op);
  }
}

TEST(AttributeTest, NumericAccessorsConvert) {
  EXPECT_DOUBLE_EQ(*Attribute::Int32(1, AttrOp::kIs, 7).AsDouble(), 7.0);
  EXPECT_EQ(*Attribute::Float64(1, AttrOp::kIs, 7.9).AsInt(), 7);
  EXPECT_EQ(Attribute::String(1, AttrOp::kIs, "x").AsDouble(), std::nullopt);
  EXPECT_EQ(Attribute::Blob(1, AttrOp::kIs, {}).AsInt(), std::nullopt);
  EXPECT_EQ(Attribute::Int32(1, AttrOp::kIs, 7).AsString(), nullptr);
  ASSERT_NE(Attribute::String(1, AttrOp::kIs, "x").AsString(), nullptr);
}

TEST(AttributeTest, EqualityIsStructural) {
  const Attribute a = Attribute::Int32(1, AttrOp::kIs, 5);
  EXPECT_EQ(a, Attribute::Int32(1, AttrOp::kIs, 5));
  EXPECT_NE(a, Attribute::Int32(2, AttrOp::kIs, 5));
  EXPECT_NE(a, Attribute::Int32(1, AttrOp::kEq, 5));
  EXPECT_NE(a, Attribute::Int32(1, AttrOp::kIs, 6));
  EXPECT_NE(a, Attribute::Int64(1, AttrOp::kIs, 5));  // type matters
}

TEST(AttributeTest, SerializeRoundTripEachType) {
  const AttributeVector attrs = {
      Attribute::Int32(kKeyInterval, AttrOp::kIs, -42),
      Attribute::Int64(kKeyTimestamp, AttrOp::kGe, 1LL << 40),
      Attribute::Float32(kKeyIntensity, AttrOp::kLt, 0.5f),
      Attribute::Float64(kKeyConfidence, AttrOp::kGt, 99.25),
      Attribute::String(kKeyTask, AttrOp::kEq, "detectAnimal"),
      Attribute::Blob(kKeyTarget, AttrOp::kIs, {0, 255, 1, 254}),
      Attribute::Int32(kKeyClass, AttrOp::kEqAny, 0),
  };
  ByteWriter writer;
  SerializeAttributes(attrs, &writer);
  EXPECT_EQ(writer.size(), AttributesWireSize(attrs));

  ByteReader reader(writer.data());
  std::optional<AttributeVector> round = DeserializeAttributes(&reader);
  ASSERT_TRUE(round.has_value());
  ASSERT_EQ(round->size(), attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    EXPECT_EQ((*round)[i], attrs[i]) << "attr " << i;
  }
}

TEST(AttributeTest, DeserializeRejectsGarbage) {
  const std::vector<uint8_t> garbage = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  ByteReader reader(garbage);
  EXPECT_EQ(Attribute::Deserialize(&reader), std::nullopt);
}

TEST(AttributeTest, DeserializeRejectsBadOpAndType) {
  // key(4) + op + type; op 200 invalid.
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU8(200);
  writer.WriteU8(0);
  writer.WriteU32(5);
  ByteReader bad_op(writer.data());
  EXPECT_EQ(Attribute::Deserialize(&bad_op), std::nullopt);

  ByteWriter writer2;
  writer2.WriteU32(1);
  writer2.WriteU8(0);
  writer2.WriteU8(99);  // invalid type
  writer2.WriteU32(5);
  ByteReader bad_type(writer2.data());
  EXPECT_EQ(Attribute::Deserialize(&bad_type), std::nullopt);
}

TEST(AttributeTest, WireSizeMatchesSerialization) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    Attribute attr;
    switch (rng.NextInt(0, 5)) {
      case 0:
        attr = Attribute::Int32(static_cast<AttrKey>(rng.Next()), AttrOp::kIs,
                                static_cast<int32_t>(rng.Next()));
        break;
      case 1:
        attr = Attribute::Int64(1, AttrOp::kLe, static_cast<int64_t>(rng.Next()));
        break;
      case 2:
        attr = Attribute::Float32(2, AttrOp::kGe, 1.5f);
        break;
      case 3:
        attr = Attribute::Float64(3, AttrOp::kGt, 2.5);
        break;
      case 4:
        attr = Attribute::String(4, AttrOp::kEq,
                                 std::string(static_cast<size_t>(rng.NextInt(0, 40)), 'q'));
        break;
      default:
        attr = Attribute::Blob(
            5, AttrOp::kIs,
            std::vector<uint8_t>(static_cast<size_t>(rng.NextInt(0, 64)), 0x5a));
        break;
    }
    ByteWriter writer;
    attr.Serialize(&writer);
    EXPECT_EQ(writer.size(), attr.WireSize());
  }
}

TEST(AttributeTest, FindHelpers) {
  const AttributeVector attrs = {
      Attribute::Int32(kKeyClass, AttrOp::kEq, kClassData),
      Attribute::String(kKeyType, AttrOp::kIs, "light"),
      Attribute::Int32(kKeyClass, AttrOp::kIs, kClassInterest),
  };
  EXPECT_EQ(FindAttribute(attrs, kKeyClass), &attrs[0]);
  EXPECT_EQ(FindActual(attrs, kKeyClass), &attrs[2]);
  EXPECT_EQ(FindAttribute(attrs, kKeySequence), nullptr);
  EXPECT_EQ(FindActual(attrs, kKeySequence), nullptr);
}

TEST(AttributeTest, RemoveAttributes) {
  AttributeVector attrs = {
      Attribute::Int32(1, AttrOp::kIs, 1),
      Attribute::Int32(2, AttrOp::kIs, 2),
      Attribute::Int32(1, AttrOp::kEq, 3),
  };
  EXPECT_EQ(RemoveAttributes(&attrs, 1), 2u);
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0].key(), 2u);
  EXPECT_EQ(RemoveAttributes(&attrs, 99), 0u);
}

TEST(AttributeTest, ToStringRendersOpNames) {
  const Attribute attr = Attribute::Float64(kKeyConfidence, AttrOp::kGt, 0.5);
  EXPECT_NE(attr.ToString().find("GT"), std::string::npos);
  EXPECT_NE(attr.ToString().find("0.5"), std::string::npos);
}

TEST(KeysTest, ClassHelpers) {
  const Attribute is = ClassIs(kClassInterest);
  EXPECT_TRUE(is.IsActual());
  EXPECT_EQ(is.key(), kKeyClass);
  const Attribute eq = ClassEq(kClassData);
  EXPECT_TRUE(eq.IsFormal());
}

TEST(KeysTest, NamesKnownKeys) {
  EXPECT_EQ(KeyName(kKeyClass), "class");
  EXPECT_EQ(KeyName(kKeyInterval), "interval");
  EXPECT_EQ(KeyName(54321), "54321");
}

class AttributeVectorRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AttributeVectorRoundTrip, RandomVectorsSurviveSerialization) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  AttributeVector attrs;
  const int count = static_cast<int>(rng.NextInt(0, 20));
  for (int i = 0; i < count; ++i) {
    const AttrKey key = static_cast<AttrKey>(rng.NextInt(1, 2000));
    const AttrOp op = static_cast<AttrOp>(rng.NextInt(0, 7));
    switch (rng.NextInt(0, 3)) {
      case 0:
        attrs.push_back(Attribute::Int32(key, op, static_cast<int32_t>(rng.Next())));
        break;
      case 1:
        attrs.push_back(Attribute::Float64(key, op, rng.NextDouble() * 1e6 - 5e5));
        break;
      case 2:
        attrs.push_back(Attribute::String(
            key, op, std::string(static_cast<size_t>(rng.NextInt(0, 30)), 'z')));
        break;
      default:
        attrs.push_back(Attribute::Blob(
            key, op, std::vector<uint8_t>(static_cast<size_t>(rng.NextInt(0, 50)), 7)));
        break;
    }
  }
  ByteWriter writer;
  SerializeAttributes(attrs, &writer);
  ByteReader reader(writer.data());
  std::optional<AttributeVector> round = DeserializeAttributes(&reader);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, attrs);
  EXPECT_EQ(reader.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, AttributeVectorRoundTrip, ::testing::Range(0, 25));

}  // namespace
}  // namespace diffusion
