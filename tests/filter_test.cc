// Tests for the filter chain and the built-in filters.

#include <gtest/gtest.h>

#include "src/apps/app_keys.h"
#include "src/core/node.h"
#include "src/filters/counting_aggregation_filter.h"
#include "src/filters/duplicate_suppression_filter.h"
#include "src/filters/geo_scope_filter.h"
#include "src/filters/logging_filter.h"
#include "src/naming/keys.h"
#include "tests/test_util.h"

namespace diffusion {
namespace {

using testing_support::FastRadio;
using testing_support::MakeCliqueChannel;
using testing_support::MakeLineChannel;

AttributeVector Query() {
  return {ClassEq(kClassData), Attribute::String(kKeyType, AttrOp::kEq, "detect")};
}

AttributeVector Publication() {
  return {Attribute::String(kKeyType, AttrOp::kIs, "detect")};
}

// Filter attrs are formals: the filter triggers when a message's actuals
// satisfy them (one-way match).
AttributeVector FilterMatch() {
  return {ClassEq(kClassData), Attribute::String(kKeyType, AttrOp::kEq, "detect")};
}

AttributeVector Event(int32_t seq, int32_t source) {
  return {
      Attribute::Int32(kKeySequence, AttrOp::kIs, seq),
      Attribute::Int32(kKeySourceId, AttrOp::kIs, source),
      Attribute::Float64(kKeyConfidence, AttrOp::kIs, 50.0 + source),
  };
}

// ---- Chain mechanics ----

TEST(FilterChainTest, PriorityOrderAndPassThrough) {
  Simulator sim(1);
  auto channel = MakeCliqueChannel(&sim, 2);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode source(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});

  std::vector<int> order;
  FilterHandle high = kInvalidHandle;
  FilterHandle low = kInvalidHandle;
  high = sink.AddFilter(FilterMatch(), 100, [&](Message& message, FilterApi& api) {
    order.push_back(100);
    api.SendMessage(std::move(message), high);
  });
  low = sink.AddFilter(FilterMatch(), 50, [&](Message& message, FilterApi& api) {
    order.push_back(50);
    api.SendMessage(std::move(message), low);
  });

  int delivered = 0;
  (void)sink.Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = source.Publish(Publication());
  sim.RunUntil(kSecond);
  (void)source.Send(pub, Event(1, 1));
  sim.RunUntil(5 * kSecond);

  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], 100);
  EXPECT_EQ(order[1], 50);
  EXPECT_EQ(delivered, 1);
}

TEST(FilterChainTest, DroppingFilterStopsProcessing) {
  Simulator sim(2);
  auto channel = MakeCliqueChannel(&sim, 2);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode source(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});

  int filter_hits = 0;
  (void)sink.AddFilter(FilterMatch(), 10, [&](Message&, FilterApi&) {
    ++filter_hits;  // deliberately drops the message
  });
  int delivered = 0;
  (void)sink.Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = source.Publish(Publication());
  sim.RunUntil(kSecond);
  (void)source.Send(pub, Event(1, 1));
  sim.RunUntil(5 * kSecond);
  EXPECT_GE(filter_hits, 1);
  EXPECT_EQ(delivered, 0);
}

TEST(FilterChainTest, NonMatchingFilterIgnored) {
  Simulator sim(3);
  auto channel = MakeCliqueChannel(&sim, 2);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode source(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});

  int filter_hits = 0;
  // Would drop anything it matched; the point is that it must not match.
  (void)sink.AddFilter({ClassEq(kClassData), Attribute::String(kKeyType, AttrOp::kEq, "other")}, 10,
                       [&](Message&, FilterApi&) { ++filter_hits; });
  int delivered = 0;
  (void)sink.Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = source.Publish(Publication());
  sim.RunUntil(kSecond);
  (void)source.Send(pub, Event(1, 1));
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(filter_hits, 0);
  EXPECT_EQ(delivered, 1);
}

TEST(FilterChainTest, RemoveFilterDisables) {
  Simulator sim(4);
  auto channel = MakeCliqueChannel(&sim, 2);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode source(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  int filter_hits = 0;
  const FilterHandle handle =  // counts and drops; removed again below
      sink.AddFilter(FilterMatch(), 10, [&](Message&, FilterApi&) { ++filter_hits; });
  EXPECT_EQ(sink.RemoveFilter(handle), ApiResult::kOk);
  EXPECT_EQ(sink.RemoveFilter(handle), ApiResult::kUnknownHandle);
  int delivered = 0;
  (void)sink.Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = source.Publish(Publication());
  sim.RunUntil(kSecond);
  (void)source.Send(pub, Event(1, 1));
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(filter_hits, 0);
  EXPECT_EQ(delivered, 1);
}

TEST(FilterChainTest, FilterSeesLocallyOriginatedMessages) {
  Simulator sim(5);
  auto channel = MakeCliqueChannel(&sim, 2);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode source(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  int source_filter_hits = 0;
  FilterHandle handle = kInvalidHandle;
  handle = source.AddFilter(FilterMatch(), 10, [&](Message& message, FilterApi& api) {
    ++source_filter_hits;
    api.SendMessage(std::move(message), handle);
  });
  (void)sink.Subscribe(Query(), [](const AttributeVector&) {});
  const PublicationHandle pub = source.Publish(Publication());
  sim.RunUntil(kSecond);
  (void)source.Send(pub, Event(1, 1));
  sim.RunUntil(5 * kSecond);
  EXPECT_GE(source_filter_hits, 1);  // own outgoing data passed the chain
}

// ---- DuplicateSuppressionFilter ----

TEST(DuplicateSuppressionTest, SuppressesRepeatedSequences) {
  Simulator sim(6);
  auto channel = MakeCliqueChannel(&sim, 3);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode src_a(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  DiffusionNode src_b(&sim, channel.get(), 3, NodeOptions{.radio = FastRadio()});

  DuplicateSuppressionFilter filter(&sink, FilterMatch(), 10);
  std::vector<int32_t> received;
  (void)sink.Subscribe(Query(), [&](const AttributeVector& attrs) {
    const Attribute* seq = FindActual(attrs, kKeySequence);
    received.push_back(static_cast<int32_t>(seq->AsInt().value_or(-1)));
  });
  const PublicationHandle pub_a = src_a.Publish(Publication());
  const PublicationHandle pub_b = src_b.Publish(Publication());
  sim.RunUntil(kSecond);
  // Both sources detect the same events (same sequence numbers).
  for (int i = 0; i < 5; ++i) {
    sim.After(i * kSecond, [&, i] {
      (void)src_a.Send(pub_a, Event(i, 1));
      (void)src_b.Send(pub_b, Event(i, 2));
    });
  }
  sim.RunUntil(60 * kSecond);
  // One delivery per distinct event.
  EXPECT_EQ(received.size(), 5u);
  EXPECT_GT(filter.suppressed(), 0u);
}

TEST(DuplicateSuppressionTest, PassesMessagesWithoutSequence) {
  Simulator sim(7);
  auto channel = MakeCliqueChannel(&sim, 2);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode source(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  DuplicateSuppressionFilter filter(&sink, FilterMatch(), 10);
  int delivered = 0;
  (void)sink.Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = source.Publish(Publication());
  sim.RunUntil(kSecond);
  (void)source.Send(pub, {Attribute::Float64(kKeyConfidence, AttrOp::kIs, 1.0)});
  sim.RunUntil(3 * kSecond);  // let the exploratory round reinforce the path
  (void)source.Send(pub, {Attribute::Float64(kKeyConfidence, AttrOp::kIs, 2.0)});
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(filter.suppressed(), 0u);
}

TEST(DuplicateSuppressionTest, WindowBoundsMemory) {
  Simulator sim(8);
  auto channel = MakeCliqueChannel(&sim, 2);
  DiffusionNode node(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DuplicateSuppressionFilter filter(&node, FilterMatch(), 10, /*window=*/4);
  // Exercise via the filter's own counters using locally injected sends.
  int delivered = 0;
  (void)node.Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = node.Publish(Publication());
  sim.RunUntil(100 * kMillisecond);
  for (int i = 0; i < 10; ++i) {
    (void)node.Send(pub, Event(i, 1));
  }
  // Sequence 0 has been evicted from the window by now: it passes again.
  (void)node.Send(pub, Event(0, 1));
  sim.RunUntil(kSecond);
  EXPECT_EQ(filter.passed(), 11u);
}

// ---- CountingAggregationFilter ----

TEST(CountingAggregationTest, MergesConcurrentDetections) {
  Simulator sim(9);
  auto channel = MakeCliqueChannel(&sim, 4);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode relay(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  DiffusionNode src_a(&sim, channel.get(), 3, NodeOptions{.radio = FastRadio()});
  DiffusionNode src_b(&sim, channel.get(), 4, NodeOptions{.radio = FastRadio()});
  (void)relay;

  CountingAggregationFilter filter(&sink, FilterMatch(), 10, 500 * kMillisecond);
  std::vector<AttributeVector> received;
  (void)sink.Subscribe(Query(), [&](const AttributeVector& attrs) { received.push_back(attrs); });
  const PublicationHandle pub_a = src_a.Publish(Publication());
  const PublicationHandle pub_b = src_b.Publish(Publication());
  sim.RunUntil(kSecond);
  (void)src_a.Send(pub_a, Event(7, 1));
  (void)src_b.Send(pub_b, Event(7, 2));
  sim.RunUntil(10 * kSecond);

  ASSERT_EQ(received.size(), 1u);  // one aggregate, not two messages
  const Attribute* count = FindActual(received[0], kKeyDetectionCount);
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->AsInt().value_or(0), 2);
  const Attribute* confidence = FindActual(received[0], kKeyConfidence);
  ASSERT_NE(confidence, nullptr);
  EXPECT_DOUBLE_EQ(confidence->AsDouble().value_or(0), 52.0);  // max of 51, 52
  EXPECT_EQ(filter.aggregates_emitted(), 1u);
  // At least the second source's copy merged; flood re-broadcast copies of
  // the same packets may merge too (packet dedup runs in the core, below
  // this filter).
  EXPECT_GE(filter.events_merged(), 1u);
}

TEST(CountingAggregationTest, ProbabilisticOrFusesConfidence) {
  // §5.1's example: "seismic and infrared sensors indicate 80% chance of
  // detection" — 0.5 and 0.6 fuse to exactly 1 - 0.5*0.4 = 0.8.
  Simulator sim(99);
  auto channel = MakeCliqueChannel(&sim, 3);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode seismic(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  DiffusionNode infrared(&sim, channel.get(), 3, NodeOptions{.radio = FastRadio()});

  CountingAggregationFilter fusion(&sink, FilterMatch(), 10, 500 * kMillisecond,
                                   ConfidenceMerge::kProbabilisticOr);
  std::vector<double> confidences;
  (void)sink.Subscribe(Query(), [&](const AttributeVector& attrs) {
    const Attribute* confidence = FindActual(attrs, kKeyConfidence);
    confidences.push_back(confidence->AsDouble().value_or(-1));
  });
  const PublicationHandle pub_a = seismic.Publish(Publication());
  const PublicationHandle pub_b = infrared.Publish(Publication());
  sim.RunUntil(kSecond);
  (void)seismic.Send(pub_a, {Attribute::Int32(kKeySequence, AttrOp::kIs, 7),
                       Attribute::Int32(kKeySourceId, AttrOp::kIs, 1),
                       Attribute::Float64(kKeyConfidence, AttrOp::kIs, 0.5)});
  (void)infrared.Send(pub_b, {Attribute::Int32(kKeySequence, AttrOp::kIs, 7),
                        Attribute::Int32(kKeySourceId, AttrOp::kIs, 2),
                        Attribute::Float64(kKeyConfidence, AttrOp::kIs, 0.6)});
  sim.RunUntil(10 * kSecond);
  ASSERT_EQ(confidences.size(), 1u);
  EXPECT_DOUBLE_EQ(confidences[0], 0.8);
}

// ---- LoggingFilter ----

TEST(LoggingFilterTest, CountsAndPassesThrough) {
  Simulator sim(10);
  auto channel = MakeCliqueChannel(&sim, 2);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode source(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  LoggingFilter monitor(&sink, {}, 1000);  // observe everything
  int observed = 0;
  monitor.SetObserver([&](const Message&) { ++observed; });
  int delivered = 0;
  (void)sink.Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = source.Publish(Publication());
  sim.RunUntil(kSecond);
  (void)source.Send(pub, Event(1, 1));
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(delivered, 1);
  EXPECT_GT(monitor.total(), 0u);
  EXPECT_GT(observed, 0);
  EXPECT_GE(monitor.CountFor(MessageType::kExploratoryData), 1u);
}

// ---- GeoScopeFilter ----

TEST(GeoRectTest, ParsesInterestRectangles) {
  AttributeVector attrs = {
      Attribute::Float64(kKeyXCoord, AttrOp::kGe, -100.0),
      Attribute::Float64(kKeyXCoord, AttrOp::kLe, 200.0),
      Attribute::Float64(kKeyYCoord, AttrOp::kGe, 100.0),
      Attribute::Float64(kKeyYCoord, AttrOp::kLe, 400.0),
  };
  const auto rect = RectFromInterest(attrs);
  ASSERT_TRUE(rect.has_value());
  EXPECT_TRUE(rect->Contains(125, 220));
  EXPECT_FALSE(rect->Contains(300, 220));
}

TEST(GeoRectTest, IncompleteConstraintsYieldNothing) {
  EXPECT_FALSE(RectFromInterest({}).has_value());
  EXPECT_FALSE(RectFromInterest({Attribute::Float64(kKeyXCoord, AttrOp::kGe, 0.0)}).has_value());
}

TEST(GeoScopeFilterTest, PrunesOutOfCorridorNodes) {
  // Line 1-2-3: sink 1 at x=0 queries a region near x=10; node 3 sits far
  // away at x=100 and should not re-flood the interest.
  Simulator sim(11);
  auto channel = MakeLineChannel(&sim, 3);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode near_node(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  DiffusionNode far_node(&sim, channel.get(), 3, NodeOptions{.radio = FastRadio()});

  GeoScopeFilter near_filter(&near_node, Position{5, 0, 0}, /*slack=*/5.0, 10);
  GeoScopeFilter far_filter(&far_node, Position{100, 0, 0}, /*slack=*/5.0, 10);

  AttributeVector query = {
      ClassEq(kClassData),
      Attribute::String(kKeyType, AttrOp::kEq, "detect"),
      Attribute::Float64(kKeyXCoord, AttrOp::kGe, 8.0),
      Attribute::Float64(kKeyXCoord, AttrOp::kLe, 12.0),
      Attribute::Float64(kKeyYCoord, AttrOp::kGe, -2.0),
      Attribute::Float64(kKeyYCoord, AttrOp::kLe, 2.0),
      Attribute::Float64(kKeySinkX, AttrOp::kIs, 0.0),
      Attribute::Float64(kKeySinkY, AttrOp::kIs, 0.0),
  };
  (void)sink.Subscribe(query, [](const AttributeVector&) {});
  sim.RunUntil(5 * kSecond);
  EXPECT_GT(near_filter.passed(), 0u);
  EXPECT_GT(far_filter.pruned(), 0u);
  // The far node never installed the interest.
  AttributeVector interest_attrs = query;
  interest_attrs.push_back(ClassIs(kClassInterest));
  EXPECT_EQ(far_node.gradients().FindExact(interest_attrs), nullptr);
  EXPECT_NE(near_node.gradients().FindExact(interest_attrs), nullptr);
}

TEST(GeoScopeFilterTest, PassesUnconstrainedInterests) {
  Simulator sim(12);
  auto channel = MakeCliqueChannel(&sim, 2);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode other(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  GeoScopeFilter filter(&other, Position{1000, 1000, 0}, 1.0, 10);
  (void)sink.Subscribe(Query(), [](const AttributeVector&) {});
  sim.RunUntil(5 * kSecond);
  EXPECT_GT(filter.passed(), 0u);
  EXPECT_EQ(filter.pruned(), 0u);
}

}  // namespace
}  // namespace diffusion
