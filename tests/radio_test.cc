// Tests for the radio substrate: propagation, fragmentation, channel
// collisions, the CSMA MAC, and the energy model.

#include <gtest/gtest.h>

#include "src/core/node.h"
#include "src/naming/keys.h"
#include "src/radio/channel.h"
#include "src/radio/energy.h"
#include "src/radio/fragmentation.h"
#include "src/radio/mac.h"
#include "src/radio/propagation.h"
#include "src/radio/radio.h"
#include "src/sim/simulator.h"
#include "tests/test_util.h"

namespace diffusion {
namespace {

using testing_support::FastRadio;
using testing_support::MakeCliqueChannel;
using testing_support::MakeLineChannel;

// ---- Propagation ----

TEST(PropagationTest, DiskRange) {
  DiskPropagation prop(10.0);
  prop.SetPosition(1, {0, 0, 0});
  prop.SetPosition(2, {6, 8, 0});   // distance 10
  prop.SetPosition(3, {7, 8, 0});   // distance ~10.6
  EXPECT_TRUE(prop.Reaches(1, 2));
  EXPECT_TRUE(prop.Reaches(2, 1));
  EXPECT_FALSE(prop.Reaches(1, 3));
  EXPECT_FALSE(prop.Reaches(1, 1));  // never reaches self
}

TEST(PropagationTest, FloorsBlockUnlessConfigured) {
  DiskPropagation prop(10.0);
  prop.SetPosition(1, {0, 0, 10});
  prop.SetPosition(2, {1, 0, 11});
  EXPECT_FALSE(prop.Reaches(1, 2));
  prop.set_inter_floor_range(5.0);
  EXPECT_TRUE(prop.Reaches(1, 2));
}

TEST(PropagationTest, AsymmetricLinkViaOverride) {
  // §6.4: "some experiments seemed to show asymmetric links".
  DiskPropagation prop(1.0);  // too short for any natural link
  prop.SetPosition(1, {0, 0, 0});
  prop.SetPosition(2, {5, 0, 0});
  LinkQuality quality;
  quality.delivery_probability = 0.8;
  prop.SetLinkQuality(1, 2, quality);
  EXPECT_TRUE(prop.Reaches(1, 2));
  EXPECT_FALSE(prop.Reaches(2, 1));  // only one direction overridden
  EXPECT_DOUBLE_EQ(prop.DeliveryProbability(1, 2, 0), 0.8);
  EXPECT_DOUBLE_EQ(prop.DeliveryProbability(2, 1, 0), 0.0);
}

TEST(PropagationTest, BlockedLink) {
  DiskPropagation prop(10.0);
  prop.SetPosition(1, {0, 0, 0});
  prop.SetPosition(2, {1, 0, 0});
  EXPECT_TRUE(prop.Reaches(1, 2));
  prop.BlockLink(1, 2);
  EXPECT_FALSE(prop.Reaches(1, 2));
  EXPECT_TRUE(prop.Reaches(2, 1));
}

TEST(PropagationTest, IntermittentLinkWindows) {
  // §6.4: "some links provided only intermittent connectivity".
  LinkQuality quality;
  quality.delivery_probability = 0.9;
  quality.intermittent = true;
  quality.period = 10 * kSecond;
  quality.on_fraction = 0.5;
  EXPECT_DOUBLE_EQ(EvaluateLinkQuality(quality, 0), 0.9);
  EXPECT_DOUBLE_EQ(EvaluateLinkQuality(quality, 4 * kSecond), 0.9);
  EXPECT_DOUBLE_EQ(EvaluateLinkQuality(quality, 5 * kSecond), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateLinkQuality(quality, 9 * kSecond), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateLinkQuality(quality, 12 * kSecond), 0.9);
}

TEST(PropagationTest, ExplicitTopology) {
  ExplicitTopology topology;
  topology.AddLink(1, 2);
  EXPECT_TRUE(topology.Reaches(1, 2));
  EXPECT_FALSE(topology.Reaches(2, 1));
  topology.AddSymmetricLink(2, 3);
  EXPECT_TRUE(topology.Reaches(2, 3));
  EXPECT_TRUE(topology.Reaches(3, 2));
  topology.RemoveLink(1, 2);
  EXPECT_FALSE(topology.Reaches(1, 2));
}

// ---- Fragmentation ----

TEST(FragmentationTest, SplitSizes) {
  const std::vector<uint8_t> payload(112, 0x11);
  const auto fragments = SplitMessage(1, 2, 7, payload, 27);
  ASSERT_EQ(fragments.size(), 5u);  // 112 = 4*27 + 4
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fragments[i].payload.size(), 27u);
    EXPECT_EQ(fragments[i].index, i);
    EXPECT_EQ(fragments[i].count, 5);
  }
  EXPECT_EQ(fragments[4].payload.size(), 4u);
}

TEST(FragmentationTest, EmptyPayloadYieldsOneFragment) {
  const auto fragments = SplitMessage(1, 2, 7, {}, 27);
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_TRUE(fragments[0].payload.empty());
}

TEST(FragmentationTest, FragmentSerializeRoundTrip) {
  Fragment fragment;
  fragment.src = 10;
  fragment.dst = kBroadcastId;
  fragment.message_seq = 99;
  fragment.index = 2;
  fragment.count = 5;
  fragment.payload = {9, 8, 7};
  const auto bytes = fragment.Serialize();
  EXPECT_EQ(bytes.size(), fragment.WireSize());
  const auto round = Fragment::Deserialize(bytes);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->src, 10u);
  EXPECT_EQ(round->dst, kBroadcastId);
  EXPECT_EQ(round->message_seq, 99u);
  EXPECT_EQ(round->index, 2);
  EXPECT_EQ(round->count, 5);
  EXPECT_EQ(round->payload, fragment.payload);
}

TEST(FragmentationTest, DeserializeRejectsMalformed) {
  EXPECT_EQ(Fragment::Deserialize({1, 2, 3}), std::nullopt);
  Fragment fragment;
  fragment.index = 4;
  fragment.count = 3;  // index >= count
  fragment.payload = {};
  // Construct manually since Serialize would encode the bad values as-is.
  EXPECT_EQ(Fragment::Deserialize(fragment.Serialize()), std::nullopt);
}

TEST(FragmentationTest, ReassemblyInOrder) {
  Reassembler reassembler(kSecond);
  const std::vector<uint8_t> payload(60, 0xcd);
  const auto fragments = SplitMessage(1, 2, 7, payload, 27);
  for (size_t i = 0; i + 1 < fragments.size(); ++i) {
    EXPECT_EQ(reassembler.Add(fragments[i], 0), std::nullopt);
  }
  const auto completed = reassembler.Add(fragments.back(), 0);
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(completed->payload, payload);
  EXPECT_EQ(completed->src, 1u);
  EXPECT_EQ(reassembler.pending(), 0u);
}

TEST(FragmentationTest, ReassemblyOutOfOrderAndDuplicates) {
  Reassembler reassembler(kSecond);
  const std::vector<uint8_t> payload(100, 0xee);
  auto fragments = SplitMessage(1, 2, 7, payload, 27);
  ASSERT_EQ(fragments.size(), 4u);
  EXPECT_EQ(reassembler.Add(fragments[2], 0), std::nullopt);
  EXPECT_EQ(reassembler.Add(fragments[0], 0), std::nullopt);
  EXPECT_EQ(reassembler.Add(fragments[0], 0), std::nullopt);  // duplicate
  EXPECT_EQ(reassembler.Add(fragments[3], 0), std::nullopt);
  const auto completed = reassembler.Add(fragments[1], 0);
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(completed->payload, payload);
}

TEST(FragmentationTest, MissingFragmentTimesOut) {
  Reassembler reassembler(kSecond);
  const auto fragments = SplitMessage(1, 2, 7, std::vector<uint8_t>(60, 1), 27);
  reassembler.Add(fragments[0], 0);
  reassembler.Add(fragments[1], 0);
  EXPECT_EQ(reassembler.pending(), 1u);
  reassembler.Purge(2 * kSecond);
  EXPECT_EQ(reassembler.pending(), 0u);
  // The late fragment alone cannot complete the message.
  EXPECT_EQ(reassembler.Add(fragments[2], 2 * kSecond), std::nullopt);
}

TEST(FragmentationTest, InterleavedSendersReassembleIndependently) {
  Reassembler reassembler(kSecond);
  const std::vector<uint8_t> pa(30, 0xaa);
  const std::vector<uint8_t> pb(30, 0xbb);
  const auto fa = SplitMessage(1, 9, 5, pa, 27);
  const auto fb = SplitMessage(2, 9, 5, pb, 27);
  ASSERT_EQ(fa.size(), 2u);
  EXPECT_EQ(reassembler.Add(fa[0], 0), std::nullopt);
  EXPECT_EQ(reassembler.Add(fb[0], 0), std::nullopt);
  auto done_b = reassembler.Add(fb[1], 0);
  ASSERT_TRUE(done_b.has_value());
  EXPECT_EQ(done_b->payload, pb);
  auto done_a = reassembler.Add(fa[1], 0);
  ASSERT_TRUE(done_a.has_value());
  EXPECT_EQ(done_a->payload, pa);
}

// ---- Radio / channel / MAC end-to-end ----

TEST(RadioTest, DeliversAcrossOneHop) {
  Simulator sim(1);
  auto channel = MakeLineChannel(&sim, 2);
  Radio a(&sim, channel.get(), 1, FastRadio());
  Radio b(&sim, channel.get(), 2, FastRadio());
  std::vector<uint8_t> received;
  NodeId from = 0;
  b.SetReceiveCallback([&](NodeId src, const std::vector<uint8_t>& payload) {
    from = src;
    received = payload;
  });
  const std::vector<uint8_t> payload(112, 0x42);
  EXPECT_TRUE(a.SendMessage(kBroadcastId, payload));
  sim.RunUntil(kSecond);
  EXPECT_EQ(received, payload);
  EXPECT_EQ(from, 1u);
  EXPECT_EQ(a.stats().messages_sent, 1u);
  EXPECT_EQ(a.stats().fragments_sent, 5u);
  EXPECT_EQ(b.stats().fragments_received, 5u);
  EXPECT_EQ(b.stats().messages_received, 1u);
  EXPECT_EQ(b.stats().message_bytes_received, 112u);
}

TEST(RadioTest, UnicastFilteredButOverheard) {
  Simulator sim(2);
  auto channel = MakeCliqueChannel(&sim, 3);
  Radio a(&sim, channel.get(), 1, FastRadio());
  Radio b(&sim, channel.get(), 2, FastRadio());
  Radio c(&sim, channel.get(), 3, FastRadio());
  int b_received = 0;
  int c_received = 0;
  b.SetReceiveCallback([&](NodeId, const std::vector<uint8_t>&) { ++b_received; });
  c.SetReceiveCallback([&](NodeId, const std::vector<uint8_t>&) { ++c_received; });
  a.SendMessage(2, std::vector<uint8_t>(40, 1));
  sim.RunUntil(kSecond);
  EXPECT_EQ(b_received, 1);
  EXPECT_EQ(c_received, 0);
  // C still paid receive time for the overheard frames.
  EXPECT_GT(c.stats().time_receiving, 0);
}

TEST(RadioTest, NoDeliveryOutOfRange) {
  Simulator sim(3);
  auto channel = MakeLineChannel(&sim, 3);  // 1-2-3; 1 cannot reach 3
  Radio a(&sim, channel.get(), 1, FastRadio());
  Radio b(&sim, channel.get(), 2, FastRadio());
  Radio c(&sim, channel.get(), 3, FastRadio());
  int c_received = 0;
  c.SetReceiveCallback([&](NodeId, const std::vector<uint8_t>&) { ++c_received; });
  a.SendMessage(kBroadcastId, std::vector<uint8_t>(20, 1));
  sim.RunUntil(kSecond);
  EXPECT_EQ(c_received, 0);
}

TEST(RadioTest, HiddenTerminalCollision) {
  // 1 and 3 cannot hear each other but both reach 2: simultaneous
  // transmissions collide at 2 (§6.1: "hidden terminals are endemic").
  Simulator sim(4);
  auto channel = MakeLineChannel(&sim, 3);
  RadioConfig config = FastRadio();
  config.mac.initial_jitter = 0;  // force exact overlap
  Radio a(&sim, channel.get(), 1, config);
  Radio b(&sim, channel.get(), 2, config);
  Radio c(&sim, channel.get(), 3, config);
  int b_received = 0;
  b.SetReceiveCallback([&](NodeId, const std::vector<uint8_t>&) { ++b_received; });
  a.SendMessage(kBroadcastId, std::vector<uint8_t>(20, 1));
  c.SendMessage(kBroadcastId, std::vector<uint8_t>(20, 2));
  sim.RunUntil(kSecond);
  EXPECT_EQ(b_received, 0);
  EXPECT_GE(channel->stats().collisions, 2u);
}

TEST(RadioTest, CarrierSenseAvoidsCollisionWhenInRange) {
  // When both senders hear each other, CSMA serializes them.
  Simulator sim(5);
  auto channel = MakeCliqueChannel(&sim, 3);
  Radio a(&sim, channel.get(), 1, FastRadio());
  Radio b(&sim, channel.get(), 2, FastRadio());
  Radio c(&sim, channel.get(), 3, FastRadio());
  int received = 0;
  c.SetReceiveCallback([&](NodeId, const std::vector<uint8_t>&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    a.SendMessage(kBroadcastId, std::vector<uint8_t>(20, 1));
    b.SendMessage(kBroadcastId, std::vector<uint8_t>(20, 2));
  }
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(received, 20);
}

TEST(RadioTest, LossyLinkDropsWholeMessages) {
  // Per-fragment loss amplifies into message loss (§6.1): with 5 fragments
  // at 70% fragment delivery, message delivery ≈ 0.7^5 ≈ 17%.
  Simulator sim(6);
  auto channel = MakeLineChannel(&sim, 2, 0.7);
  Radio a(&sim, channel.get(), 1, FastRadio());
  Radio b(&sim, channel.get(), 2, FastRadio());
  int received = 0;
  b.SetReceiveCallback([&](NodeId, const std::vector<uint8_t>&) { ++received; });
  const int sent = 300;
  for (int i = 0; i < sent; ++i) {
    sim.After(i * 20 * kMillisecond, [&a] { a.SendMessage(kBroadcastId, std::vector<uint8_t>(112, 3)); });
  }
  sim.RunUntil(20 * kSecond);
  const double rate = static_cast<double>(received) / sent;
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.35);
}

TEST(RadioTest, DeadRadioNeitherSendsNorReceives) {
  Simulator sim(7);
  auto channel = MakeLineChannel(&sim, 2);
  Radio a(&sim, channel.get(), 1, FastRadio());
  Radio b(&sim, channel.get(), 2, FastRadio());
  int received = 0;
  b.SetReceiveCallback([&](NodeId, const std::vector<uint8_t>&) { ++received; });
  b.Kill();
  a.SendMessage(kBroadcastId, std::vector<uint8_t>(20, 1));
  sim.RunUntil(kSecond);
  EXPECT_EQ(received, 0);
  a.Kill();
  EXPECT_FALSE(a.SendMessage(kBroadcastId, std::vector<uint8_t>(20, 1)));
  b.Revive();
  a.Revive();
  EXPECT_TRUE(a.SendMessage(kBroadcastId, std::vector<uint8_t>(20, 1)));
  sim.RunUntil(2 * kSecond);
  EXPECT_EQ(received, 1);
}

namespace {

// Bare channel endpoint for driving Channel::Transmit directly.
class RecordingEndpoint : public ChannelEndpoint {
 public:
  explicit RecordingEndpoint(NodeId id, bool transmitting = false)
      : id_(id), transmitting_(transmitting) {}

  NodeId node_id() const override { return id_; }
  bool IsAlive() const override { return true; }
  bool IsTransmitting() const override { return transmitting_; }
  void OnFrameDelivered(const Fragment& fragment, SimDuration airtime) override {
    (void)fragment;
    (void)airtime;
    ++delivered_;
  }

  int delivered() const { return delivered_; }

 private:
  NodeId id_;
  bool transmitting_;
  int delivered_ = 0;
};

}  // namespace

TEST(ChannelTest, DetachMidFlightScrubsReceptions) {
  // Regression: Detach only removed the endpoint, leaving the node's
  // Reception records inside other senders' in-flight transmissions. When a
  // new endpoint re-attached under the same id before those resolved, the
  // stale records delivered frames to it and — with two overlapping
  // transmissions — charged it phantom collisions.
  Simulator sim(11);
  auto channel = MakeCliqueChannel(&sim, 3);
  RecordingEndpoint tx_a(1, /*transmitting=*/true);
  RecordingEndpoint tx_b(2, /*transmitting=*/true);
  RecordingEndpoint receiver(3);
  channel->Attach(&tx_a);
  channel->Attach(&tx_b);
  channel->Attach(&receiver);

  // Two transmissions overlap at node 3 for their whole duration.
  Fragment frame_a;
  frame_a.src = 1;
  frame_a.payload.assign(20, 0xaa);
  Fragment frame_b;
  frame_b.src = 2;
  frame_b.payload.assign(20, 0xbb);
  sim.After(0, [&] { channel->Transmit(1, frame_a, 10 * kMillisecond); });
  sim.After(kMillisecond, [&] { channel->Transmit(2, frame_b, 10 * kMillisecond); });

  // Node 3 detaches mid-flight and re-attaches (fresh endpoint, same id)
  // before either transmission ends.
  RecordingEndpoint reborn(3);
  sim.After(2 * kMillisecond, [&] {
    channel->Detach(3);
    channel->Attach(&reborn);
  });
  sim.RunUntil(kSecond);

  // The scrubbed receptions resolve to nothing: no delivery to either
  // endpoint, and no collision charged for frames the node was not attached
  // to hear. (Senders 1 and 2 still collide with each other's frames.)
  EXPECT_EQ(receiver.delivered(), 0);
  EXPECT_EQ(reborn.delivered(), 0);
  EXPECT_EQ(channel->stats().collisions, 2u);  // only at nodes 1 and 2
  EXPECT_EQ(channel->stats().deliveries, 0u);
}

TEST(ChannelTest, DetachedReceiverStopsMidFlightCleanly) {
  // Detach without re-attach: the in-flight reception simply vanishes.
  Simulator sim(12);
  auto channel = MakeLineChannel(&sim, 2);
  RecordingEndpoint sender(1);
  RecordingEndpoint receiver(2);
  channel->Attach(&sender);
  channel->Attach(&receiver);

  Fragment frame;
  frame.src = 1;
  frame.payload.assign(20, 0x11);
  sim.After(0, [&] { channel->Transmit(1, frame, 10 * kMillisecond); });
  sim.After(5 * kMillisecond, [&] { channel->Detach(2); });
  sim.RunUntil(kSecond);

  EXPECT_EQ(receiver.delivered(), 0);
  EXPECT_EQ(channel->stats().collisions, 0u);
  EXPECT_EQ(channel->stats().propagation_losses, 0u);
  EXPECT_EQ(channel->stats().deliveries, 0u);
}

TEST(MacTest, QueueOverflowDrops) {
  Simulator sim(8);
  auto channel = MakeLineChannel(&sim, 2);
  RadioConfig config = FastRadio();
  config.mac.queue_limit = 4;
  Radio a(&sim, channel.get(), 1, config);
  Radio b(&sim, channel.get(), 2, config);
  // 3 messages of 5 fragments each = 15 fragments, queue holds 4.
  for (int i = 0; i < 3; ++i) {
    a.SendMessage(kBroadcastId, std::vector<uint8_t>(112, 1));
  }
  EXPECT_GT(a.stats().fragments_dropped, 0u);
  sim.RunUntil(kSecond);
  EXPECT_GT(a.mac_stats().frames_sent, 0u);
}

TEST(MacTest, AirtimeScalesWithBytes) {
  Simulator sim(9);
  auto channel = MakeLineChannel(&sim, 2);
  MacConfig config;
  config.bitrate_bps = 13000;
  config.frame_overhead_bytes = 8;
  Radio radio(&sim, channel.get(), 1, RadioConfig{config, 27, 10 * kSecond});
  // A full 27-byte fragment: (27 + 16 header + 8 overhead) * 8 bits / 13kbps.
  CsmaMac mac(&sim, channel.get(), &radio, config);
  const SimDuration airtime = mac.FrameAirtime(Fragment::kHeaderBytes + 27);
  const double expected_s = (27.0 + Fragment::kHeaderBytes + 8.0) * 8.0 / 13000.0;
  EXPECT_NEAR(DurationToSeconds(airtime), expected_s, 1e-6);
}

// ---- Duty-cycled MAC ----

TEST(DutyCycleTest, WindowHelpers) {
  MacConfig config;
  config.duty_cycle = 0.25;
  config.duty_period = 1000;
  EXPECT_TRUE(InAwakeWindow(0, config));
  EXPECT_TRUE(InAwakeWindow(249, config));
  EXPECT_FALSE(InAwakeWindow(250, config));
  EXPECT_FALSE(InAwakeWindow(999, config));
  EXPECT_TRUE(InAwakeWindow(1000, config));
  EXPECT_EQ(NextAwakeTime(100, config), 100);
  EXPECT_EQ(NextAwakeTime(500, config), 1000);
  config.duty_cycle = 1.0;
  EXPECT_TRUE(InAwakeWindow(999999, config));
}

TEST(DutyCycleTest, TransmissionsDeferredIntoAwakeWindows) {
  Simulator sim(41);
  auto channel = MakeLineChannel(&sim, 2);
  RadioConfig config = FastRadio();
  config.mac.duty_cycle = 0.2;
  config.mac.duty_period = 1 * kSecond;
  Radio a(&sim, channel.get(), 1, config);
  Radio b(&sim, channel.get(), 2, config);
  std::vector<SimTime> deliveries;
  b.SetReceiveCallback(
      [&](NodeId, const std::vector<uint8_t>&) { deliveries.push_back(sim.now()); });
  // Send mid-sleep (t = 0.5 s): the frame must wait for the 1.0 s window.
  sim.At(500 * kMillisecond, [&a] { a.SendMessage(kBroadcastId, std::vector<uint8_t>(20, 1)); });
  sim.RunUntil(5 * kSecond);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_GE(deliveries[0], 1 * kSecond);
  EXPECT_LT(deliveries[0] % kSecond, 200 * kMillisecond + 10 * kMillisecond);
}

TEST(DutyCycleTest, SleepingReceiverPaysNoReceiveTime) {
  Simulator sim(42);
  auto channel = MakeLineChannel(&sim, 2);
  RadioConfig awake_config = FastRadio();  // sender always on
  RadioConfig sleepy_config = FastRadio();
  sleepy_config.mac.duty_cycle = 0.1;
  sleepy_config.mac.duty_period = 1 * kSecond;
  Radio sender(&sim, channel.get(), 1, awake_config);
  Radio sleeper(&sim, channel.get(), 2, sleepy_config);
  int received = 0;
  sleeper.SetReceiveCallback([&](NodeId, const std::vector<uint8_t>&) { ++received; });
  // The always-on sender transmits while the sleeper is off: nothing heard.
  sim.At(500 * kMillisecond, [&sender] {
    sender.SendMessage(kBroadcastId, std::vector<uint8_t>(20, 1));
  });
  sim.RunUntil(900 * kMillisecond);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(sleeper.stats().time_receiving, 0);
}

TEST(DutyCycleTest, DiffusionWorksUnderDutyCyclingWithAddedLatency) {
  auto run = [](double duty) {
    Simulator sim(43);
    auto channel = MakeLineChannel(&sim, 3);
    RadioConfig config = FastRadio();
    config.mac.duty_cycle = duty;
    config.mac.duty_period = 1 * kSecond;
    std::vector<std::unique_ptr<DiffusionNode>> nodes;
    for (NodeId id = 1; id <= 3; ++id) {
      nodes.push_back(
          std::make_unique<DiffusionNode>(&sim, channel.get(), id, NodeOptions{.radio = config}));
    }
    std::vector<SimTime> latencies;
    (void)nodes[0]->Subscribe(
        {ClassEq(kClassData), Attribute::String(kKeyType, AttrOp::kEq, "t")},
        [&](const AttributeVector& attrs) {
          const Attribute* stamp = FindActual(attrs, kKeyTimestamp);
          latencies.push_back(sim.now() - stamp->AsInt().value_or(0));
        });
    const PublicationHandle pub =
        nodes[2]->Publish({Attribute::String(kKeyType, AttrOp::kIs, "t")});
    sim.RunUntil(5 * kSecond);
    for (int i = 0; i < 10; ++i) {
      sim.After(i * 5 * kSecond + 2718281, [&, i] {
        (void)nodes[2]->Send(pub, {Attribute::Int32(kKeySequence, AttrOp::kIs, i),
                             Attribute::Int64(kKeyTimestamp, AttrOp::kIs, sim.now())});
      });
    }
    sim.RunUntil(2 * kMinute);
    double mean = 0;
    for (SimTime latency : latencies) {
      mean += static_cast<double>(latency);
    }
    return std::pair<size_t, double>(latencies.size(),
                                     latencies.empty() ? 0.0 : mean / latencies.size());
  };
  const auto [count_full, latency_full] = run(1.0);
  const auto [count_low, latency_low] = run(0.3);
  EXPECT_GE(count_full, 9u);
  EXPECT_GE(count_low, 9u);  // still functional
  EXPECT_GT(latency_low, latency_full * 3);  // but pays sleep deferral
}

// ---- Energy model (§6.1) ----

TEST(EnergyModelTest, FullDutyCycleDominatedByListening) {
  const double fraction = ListenEnergyFraction(1.0, EnergyRatios{}, PaperTimeShares());
  EXPECT_GT(fraction, 0.8);
}

TEST(EnergyModelTest, HalfEnergyAtTwentyTwoPercent) {
  // "At duty cycle of 22% half of the energy is spent listening."
  const double fraction = ListenEnergyFraction(0.22, EnergyRatios{}, PaperTimeShares());
  EXPECT_NEAR(fraction, 0.5, 0.03);
}

TEST(EnergyModelTest, TenPercentDominatedByCommunication) {
  // "Duty cycles of 10% begin to be dominated by send cost."
  const double fraction = ListenEnergyFraction(0.10, EnergyRatios{}, PaperTimeShares());
  EXPECT_LT(fraction, 0.4);
}

TEST(EnergyModelTest, TotalEnergyMonotoneInDutyCycle) {
  double last = 0.0;
  for (double d = 0.0; d <= 1.0; d += 0.1) {
    const double energy = TotalEnergy(d, EnergyRatios{}, PaperTimeShares());
    EXPECT_GE(energy, last);
    last = energy;
  }
}

TEST(EnergyModelTest, SharesFromStatsPartitionsTime) {
  RadioStats stats;
  stats.time_receiving = 3 * kSecond;
  const TimeShares shares = SharesFromStats(stats, 2 * kSecond, 10 * kSecond);
  EXPECT_NEAR(shares.send, 0.2, 1e-9);
  EXPECT_NEAR(shares.receive, 0.3, 1e-9);
  EXPECT_NEAR(shares.listen, 0.5, 1e-9);
}

}  // namespace
}  // namespace diffusion
