// ReplicationPool + bench/replicate glue: results and merged traces must be
// byte-identical at --jobs=1 and --jobs=8, and the pool must survive
// replicate-count < jobs, exceptions inside a replicate, and cancellation.

#include <atomic>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/replicate.h"
#include "src/sim/replication.h"
#include "src/testbed/experiments.h"
#include "src/trace/trace.h"
#include "src/trace/trace_writer.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace diffusion {
namespace {

// Deterministic stand-in for one seeded experiment: burns a private Rng
// stream and emits a few trace events, like a real replicate but cheap.
double FakeReplicate(uint64_t seed, TraceSink* sink) {
  Rng rng(seed);
  double acc = 0.0;
  for (int i = 0; i < 256; ++i) {
    acc += rng.NextDouble();
  }
  if (sink != nullptr) {
    for (int i = 0; i < 4; ++i) {
      TraceEvent event;
      event.when = static_cast<SimTime>(i);
      event.kind = TraceEventKind::kDataForward;
      event.node = static_cast<NodeId>(seed);
      event.packet = (seed << 32) | static_cast<uint64_t>(i);
      event.value = static_cast<int64_t>(rng.Next() & 0xffff);
      sink->OnEvent(event);
    }
  }
  return acc;
}

std::vector<double> RunFakes(unsigned jobs, size_t count, const std::string& trace_out) {
  return bench::RunReplicates<double>(
      jobs, count, trace_out, [](size_t) { return true; },
      [](size_t i, TraceSink* sink) { return FakeReplicate(1000 + i, sink); });
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

TEST(ReplicationPoolTest, ResolveJobsPicksHardwareConcurrencyForZero) {
  EXPECT_GE(ReplicationPool::ResolveJobs(0), 1u);
  EXPECT_EQ(ReplicationPool::ResolveJobs(5), 5u);
}

TEST(ReplicationPoolTest, ResultsInIndexOrderRegardlessOfJobs) {
  const std::vector<double> serial = RunFakes(1, 16, "");
  const std::vector<double> parallel = RunFakes(8, 16, "");
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    // Bitwise equality: same seed, same private stream, same slot.
    EXPECT_EQ(serial[i], parallel[i]) << "replicate " << i;
  }
}

TEST(ReplicationPoolTest, AggregatedStatsBitIdenticalAcrossJobs) {
  const std::vector<double> serial = RunFakes(1, 12, "");
  const std::vector<double> parallel = RunFakes(8, 12, "");
  RunningStat serial_stat;
  RunningStat parallel_stat;
  for (double v : serial) {
    serial_stat.Add(v);
  }
  for (double v : parallel) {
    parallel_stat.Add(v);
  }
  EXPECT_EQ(serial_stat.mean(), parallel_stat.mean());
  EXPECT_EQ(serial_stat.confidence95(), parallel_stat.confidence95());
}

TEST(ReplicationPoolTest, MergedTraceBytesIdenticalAcrossJobs) {
  const std::string serial_path = testing::TempDir() + "/replication_serial.jsonl";
  const std::string parallel_path = testing::TempDir() + "/replication_parallel.jsonl";
  RunFakes(1, 10, serial_path);
  RunFakes(8, 10, parallel_path);
  const std::string serial_bytes = FileBytes(serial_path);
  EXPECT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, FileBytes(parallel_path));
  // Merge order is replicate order: the node field (== seed) must ascend.
  const std::vector<TraceEvent> events = ReadTraceFile(serial_path);
  ASSERT_EQ(events.size(), 40u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].node, events[i].node);
  }
}

TEST(ReplicationPoolTest, HandlesReplicateCountSmallerThanJobs) {
  ReplicationPool pool(8);
  const std::vector<double> results =
      pool.Map<double>(3, [](size_t i) { return static_cast<double>(i) * 2.0; });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], 0.0);
  EXPECT_EQ(results[1], 2.0);
  EXPECT_EQ(results[2], 4.0);
  EXPECT_EQ(pool.executed(), 3u);
}

TEST(ReplicationPoolTest, HandlesZeroReplicates) {
  ReplicationPool pool(4);
  EXPECT_TRUE(pool.Map<int>(0, [](size_t) { return 1; }).empty());
  EXPECT_EQ(pool.executed(), 0u);
}

TEST(ReplicationPoolTest, ExceptionInReplicatePropagatesAndStopsDispatch) {
  ReplicationPool pool(1);
  std::atomic<size_t> ran{0};
  try {
    pool.Run(10, [&ran](size_t i) {
      ran.fetch_add(1);
      if (i == 2) {
        throw std::runtime_error("boom2");
      }
    });
    FAIL() << "expected the replicate's exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom2");
  }
  // Serial pool: replicates after the failing one never start.
  EXPECT_EQ(ran.load(), 3u);
}

TEST(ReplicationPoolTest, LowestIndexExceptionWinsInParallel) {
  ReplicationPool pool(4);
  try {
    pool.Run(8, [](size_t i) {
      if (i == 2 || i == 5) {
        throw std::runtime_error("boom" + std::to_string(i));
      }
    });
    FAIL() << "expected a replicate exception";
  } catch (const std::runtime_error& error) {
    // 5 may or may not have started; 2 always ran, and the rethrow scans
    // slots from index 0, so the reported failure is deterministic.
    EXPECT_STREQ(error.what(), "boom2");
  }
}

TEST(ReplicationPoolTest, CancellationSkipsUnstartedReplicates) {
  ReplicationPool pool(1);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(pool.Run(10,
                        [&pool, &ran](size_t) {
                          ran.fetch_add(1);
                          pool.Cancel();
                        }),
               ReplicationCancelled);
  EXPECT_EQ(ran.load(), 1u);
  EXPECT_EQ(pool.executed(), 1u);
  EXPECT_TRUE(pool.cancelled());
}

TEST(ReplicationPoolTest, CancellationInParallelStopsBeforeCompletion) {
  ReplicationPool pool(4);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(pool.Run(64,
                        [&pool, &ran](size_t) {
                          ran.fetch_add(1);
                          pool.Cancel();
                        }),
               ReplicationCancelled);
  EXPECT_LT(ran.load(), 64u);
  EXPECT_EQ(pool.executed(), ran.load());
}

TEST(ReplicationPoolTest, CancelledPoolRunsNothing) {
  ReplicationPool pool(4);
  pool.Cancel();
  std::atomic<size_t> ran{0};
  EXPECT_THROW(pool.Run(4, [&ran](size_t) { ran.fetch_add(1); }), ReplicationCancelled);
  EXPECT_EQ(ran.load(), 0u);
}

// The load-bearing end-to-end check (the TSan CI job runs this binary): real
// Figure-8 replicates, each owning a private Simulator/Channel/node set and
// trace buffer, produce field-identical results and byte-identical merged
// traces at jobs=1 and jobs=4.
TEST(ReplicationIntegrationTest, Fig8ReplicatesDeterministicAcrossJobs) {
  const auto run_all = [](unsigned jobs, const std::string& trace_path) {
    return bench::RunReplicates<Fig8Result>(
        jobs, 6, trace_path, [](size_t) { return true; },
        [](size_t i, TraceSink* sink) {
          Fig8Params params;
          params.sources = 1 + static_cast<int>(i % 3);
          params.duration = 60 * kSecond;
          params.warmup = 10 * kSecond;
          params.seed = 4000 + i;
          params.suppression = (i % 2) == 0;
          params.trace_sink = sink;
          return RunFig8(params);
        });
  };
  const std::string serial_path = testing::TempDir() + "/fig8_serial.jsonl";
  const std::string parallel_path = testing::TempDir() + "/fig8_parallel.jsonl";
  const std::vector<Fig8Result> serial = run_all(1, serial_path);
  const std::vector<Fig8Result> parallel = run_all(4, parallel_path);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].bytes_per_event, parallel[i].bytes_per_event) << i;
    EXPECT_EQ(serial[i].distinct_events, parallel[i].distinct_events) << i;
    EXPECT_EQ(serial[i].delivery_rate, parallel[i].delivery_rate) << i;
    EXPECT_EQ(serial[i].diffusion_bytes, parallel[i].diffusion_bytes) << i;
    EXPECT_EQ(serial[i].suppressed, parallel[i].suppressed) << i;
    EXPECT_EQ(serial[i].mean_latency_s, parallel[i].mean_latency_s) << i;
    EXPECT_EQ(serial[i].energy_per_event, parallel[i].energy_per_event) << i;
  }
  const std::string serial_bytes = FileBytes(serial_path);
  EXPECT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, FileBytes(parallel_path));
}

}  // namespace
}  // namespace diffusion
