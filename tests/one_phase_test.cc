// Tests for the one-phase pull variant: no exploratory phase, no
// reinforcement — data follows the reverse of the fastest interest flood.

#include <gtest/gtest.h>

#include "src/core/node.h"
#include "src/naming/keys.h"
#include "tests/test_util.h"

namespace diffusion {
namespace {

using testing_support::FastRadio;
using testing_support::MakeLineChannel;

AttributeVector Query() {
  return {ClassEq(kClassData), Attribute::String(kKeyType, AttrOp::kEq, "light")};
}

AttributeVector Publication() {
  return {Attribute::String(kKeyType, AttrOp::kIs, "light")};
}

AttributeVector Reading(int32_t value) {
  return {Attribute::Int32(kKeySequence, AttrOp::kIs, value)};
}

DiffusionConfig OnePhase() {
  DiffusionConfig config;
  config.variant = DiffusionVariant::kOnePhasePull;
  return config;
}

TEST(OnePhasePullTest, DeliversAcrossMultipleHops) {
  Simulator sim(201);
  auto channel = MakeLineChannel(&sim, 5);
  std::vector<std::unique_ptr<DiffusionNode>> nodes;
  for (NodeId id = 1; id <= 5; ++id) {
    nodes.push_back(std::make_unique<DiffusionNode>(&sim, channel.get(), id,
                                                    NodeOptions{.diffusion = OnePhase(),
                                                                .radio = FastRadio()}));
  }
  std::vector<int32_t> received;
  (void)nodes[0]->Subscribe(Query(), [&](const AttributeVector& attrs) {
    received.push_back(static_cast<int32_t>(
        FindActual(attrs, kKeySequence)->AsInt().value_or(-1)));
  });
  const PublicationHandle pub = nodes[4]->Publish(Publication());
  sim.RunUntil(2 * kSecond);
  for (int i = 0; i < 10; ++i) {
    sim.After(i * kSecond, [&, i] { (void)nodes[4]->Send(pub, Reading(i)); });
  }
  sim.RunUntil(30 * kSecond);
  EXPECT_EQ(received.size(), 10u);
}

TEST(OnePhasePullTest, NoExploratoryOrReinforcementTraffic) {
  Simulator sim(202);
  auto channel = MakeLineChannel(&sim, 3);
  std::vector<std::unique_ptr<DiffusionNode>> nodes;
  for (NodeId id = 1; id <= 3; ++id) {
    nodes.push_back(std::make_unique<DiffusionNode>(&sim, channel.get(), id,
                                                    NodeOptions{.diffusion = OnePhase(),
                                                                .radio = FastRadio()}));
  }
  int exploratory = 0;
  int reinforcement = 0;
  int data = 0;
  // Observe everything passing the relay.
  (void)nodes[1]->AddFilter({}, 10, [&](Message& message, FilterApi& api) {
    switch (message.type) {
      case MessageType::kExploratoryData:
        ++exploratory;
        break;
      case MessageType::kPositiveReinforcement:
      case MessageType::kNegativeReinforcement:
        ++reinforcement;
        break;
      case MessageType::kData:
        ++data;
        break;
      default:
        break;
    }
    api.SendMessageToNext(std::move(message));  // observer only: pass to core
  });
  int delivered = 0;
  (void)nodes[0]->Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = nodes[2]->Publish(Publication());
  sim.RunUntil(2 * kSecond);
  for (int i = 0; i < 15; ++i) {
    sim.After(i * kSecond, [&, i] { (void)nodes[2]->Send(pub, Reading(i)); });
  }
  sim.RunUntil(kMinute);
  EXPECT_EQ(exploratory, 0);
  EXPECT_EQ(reinforcement, 0);
  EXPECT_GE(data, 15);
  EXPECT_EQ(delivered, 15);
  EXPECT_EQ(nodes[0]->stats().reinforcements_sent, 0u);
}

TEST(OnePhasePullTest, SinglePathOnDiamond) {
  // With two equal middles, one-phase pull sends each event down exactly one
  // path (the first-interest-copy direction), never both.
  Simulator sim(203);
  auto topology = std::make_unique<ExplicitTopology>();
  topology->AddSymmetricLink(1, 2);
  topology->AddSymmetricLink(1, 3);
  topology->AddSymmetricLink(2, 4);
  topology->AddSymmetricLink(3, 4);
  auto channel = std::make_unique<Channel>(&sim, std::move(topology));
  std::vector<std::unique_ptr<DiffusionNode>> nodes;
  for (NodeId id = 1; id <= 4; ++id) {
    nodes.push_back(std::make_unique<DiffusionNode>(&sim, channel.get(), id,
                                                    NodeOptions{.diffusion = OnePhase(),
                                                                .radio = FastRadio()}));
  }
  int delivered = 0;
  (void)nodes[0]->Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = nodes[3]->Publish(Publication());
  sim.RunUntil(2 * kSecond);
  for (int i = 0; i < 10; ++i) {
    sim.After(i * kSecond, [&, i] { (void)nodes[3]->Send(pub, Reading(i)); });
  }
  sim.RunUntil(30 * kSecond);
  EXPECT_EQ(delivered, 10);
  // Exactly one middle forwarded data; each event crossed the diamond once.
  const uint64_t forwarded =
      nodes[1]->stats().messages_forwarded + nodes[2]->stats().messages_forwarded;
  // Interest floods also count as forwards (one per middle per refresh);
  // subtract them via an upper bound: 10 data forwards + a few interest
  // forwards.
  EXPECT_GE(forwarded, 10u);
  EXPECT_LE(forwarded, 14u);
}

TEST(OnePhasePullTest, RepairsViaInterestRefreshAfterNodeDeath) {
  Simulator sim(204);
  auto topology = std::make_unique<ExplicitTopology>();
  topology->AddSymmetricLink(1, 2);
  topology->AddSymmetricLink(1, 3);
  topology->AddSymmetricLink(2, 4);
  topology->AddSymmetricLink(3, 4);
  auto channel = std::make_unique<Channel>(&sim, std::move(topology));
  std::vector<std::unique_ptr<DiffusionNode>> nodes;
  for (NodeId id = 1; id <= 4; ++id) {
    nodes.push_back(std::make_unique<DiffusionNode>(&sim, channel.get(), id,
                                                    NodeOptions{.diffusion = OnePhase(),
                                                                .radio = FastRadio()}));
  }
  std::set<int32_t> received;
  (void)nodes[0]->Subscribe(Query(), [&](const AttributeVector& attrs) {
    received.insert(
        static_cast<int32_t>(FindActual(attrs, kKeySequence)->AsInt().value_or(-1)));
  });
  const PublicationHandle pub = nodes[3]->Publish(Publication());
  sim.RunUntil(2 * kSecond);
  int sent = 0;
  std::function<void()> tick = [&] {
    if (sent < 120) {
      (void)nodes[3]->Send(pub, Reading(sent++));
      sim.After(6 * kSecond, tick);
    }
  };
  sim.After(0, tick);
  // Measure after at least one refresh cycle: a single flood can be lost to
  // a hidden-terminal collision, and one-phase pull relies on refreshes.
  sim.RunUntil(2 * kMinute);
  const size_t before = received.size();
  ASSERT_GT(before, 5u);

  // Kill whichever middle is currently preferred at the source.
  InterestEntry* entry = nullptr;
  for (auto& e : nodes[3]->gradients().entries()) {
    entry = &e;
  }
  ASSERT_NE(entry, nullptr);
  const NodeId preferred = entry->preferred_interest_from;
  ASSERT_TRUE(preferred == 2 || preferred == 3);
  nodes[preferred - 1]->Kill();

  // Delivery resumes after the next interest refresh re-elects the survivor.
  sim.RunUntil(9 * kMinute);
  EXPECT_GT(received.size(), before + 20u);
}

}  // namespace
}  // namespace diffusion
