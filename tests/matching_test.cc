// Tests for the Figure-2 matching rules, the §3.2 worked example, and the
// Figure-10 benchmark attribute sets.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/apps/animal.h"
#include "src/naming/attribute.h"
#include "src/naming/keys.h"
#include "src/naming/matching.h"
#include "src/util/rng.h"

namespace diffusion {
namespace {

Attribute ConfIs(double v) { return Attribute::Float64(kKeyConfidence, AttrOp::kIs, v); }
Attribute Conf(AttrOp op, double v) { return Attribute::Float64(kKeyConfidence, op, v); }

// The paper's own example: "confidence GT 0.5" must have an actual such as
// "confidence IS 0.7" and would not match "confidence IS 0.3",
// "confidence LT 0.7", or "confidence GT 0.7".
TEST(MatchingTest, PaperConfidenceExample) {
  const AttributeVector formal = {Conf(AttrOp::kGt, 0.5)};
  EXPECT_TRUE(OneWayMatch(formal, {ConfIs(0.7)}));
  EXPECT_FALSE(OneWayMatch(formal, {ConfIs(0.3)}));
  EXPECT_FALSE(OneWayMatch(formal, {Conf(AttrOp::kLt, 0.7)}));  // formal, not actual
  EXPECT_FALSE(OneWayMatch(formal, {Conf(AttrOp::kGt, 0.7)}));
}

TEST(MatchingTest, EachComparisonOperator) {
  // actual.value <op> formal.value, with the actual on the left.
  EXPECT_TRUE(Conf(AttrOp::kEq, 5).MatchesActual(ConfIs(5)));
  EXPECT_FALSE(Conf(AttrOp::kEq, 5).MatchesActual(ConfIs(6)));
  EXPECT_TRUE(Conf(AttrOp::kNe, 5).MatchesActual(ConfIs(6)));
  EXPECT_FALSE(Conf(AttrOp::kNe, 5).MatchesActual(ConfIs(5)));
  EXPECT_TRUE(Conf(AttrOp::kLe, 5).MatchesActual(ConfIs(5)));
  EXPECT_TRUE(Conf(AttrOp::kLe, 5).MatchesActual(ConfIs(4)));
  EXPECT_FALSE(Conf(AttrOp::kLe, 5).MatchesActual(ConfIs(6)));
  EXPECT_TRUE(Conf(AttrOp::kGe, 5).MatchesActual(ConfIs(5)));
  EXPECT_FALSE(Conf(AttrOp::kGe, 5).MatchesActual(ConfIs(4)));
  EXPECT_TRUE(Conf(AttrOp::kLt, 5).MatchesActual(ConfIs(4)));
  EXPECT_FALSE(Conf(AttrOp::kLt, 5).MatchesActual(ConfIs(5)));
  EXPECT_TRUE(Conf(AttrOp::kGt, 5).MatchesActual(ConfIs(6)));
  EXPECT_FALSE(Conf(AttrOp::kGt, 5).MatchesActual(ConfIs(5)));
}

TEST(MatchingTest, EqAnyMatchesAnyActualWithKey) {
  const Attribute any = Attribute::Int32(kKeyType, AttrOp::kEqAny, 0);
  EXPECT_TRUE(any.MatchesActual(Attribute::String(kKeyType, AttrOp::kIs, "anything")));
  EXPECT_TRUE(any.MatchesActual(Attribute::Float64(kKeyType, AttrOp::kIs, 3.2)));
  EXPECT_FALSE(any.MatchesActual(Attribute::String(kKeyTask, AttrOp::kIs, "anything")));
}

TEST(MatchingTest, KeysMustAgree) {
  EXPECT_FALSE(Conf(AttrOp::kGt, 1).MatchesActual(
      Attribute::Float64(kKeyIntensity, AttrOp::kIs, 100.0)));
}

TEST(MatchingTest, ActualIsNotAPredicate) {
  EXPECT_FALSE(ConfIs(5).MatchesActual(ConfIs(5)));
}

TEST(MatchingTest, CrossNumericTypeComparisons) {
  // An int32 formal bound matches a float64 actual, and vice versa.
  const Attribute int_formal = Attribute::Int32(kKeyConfidence, AttrOp::kGt, 50);
  EXPECT_TRUE(int_formal.MatchesActual(ConfIs(50.5)));
  EXPECT_FALSE(int_formal.MatchesActual(ConfIs(49.5)));
  const Attribute float_formal = Conf(AttrOp::kLe, 10.5);
  EXPECT_TRUE(float_formal.MatchesActual(Attribute::Int32(kKeyConfidence, AttrOp::kIs, 10)));
}

TEST(MatchingTest, StringComparisons) {
  const Attribute eq = Attribute::String(kKeyTask, AttrOp::kEq, "detectAnimal");
  EXPECT_TRUE(eq.MatchesActual(Attribute::String(kKeyTask, AttrOp::kIs, "detectAnimal")));
  EXPECT_FALSE(eq.MatchesActual(Attribute::String(kKeyTask, AttrOp::kIs, "detectanimal")));
  const Attribute lt = Attribute::String(kKeyTask, AttrOp::kLt, "m");
  EXPECT_TRUE(lt.MatchesActual(Attribute::String(kKeyTask, AttrOp::kIs, "apple")));
  EXPECT_FALSE(lt.MatchesActual(Attribute::String(kKeyTask, AttrOp::kIs, "zebra")));
}

TEST(MatchingTest, StringFormalDoesNotMatchNumericActual) {
  const Attribute formal = Attribute::String(kKeyTask, AttrOp::kEq, "5");
  EXPECT_FALSE(formal.MatchesActual(Attribute::Int32(kKeyTask, AttrOp::kIs, 5)));
}

TEST(MatchingTest, MissingActualFailsOneWay) {
  const AttributeVector a = {Conf(AttrOp::kGt, 0.5),
                             Attribute::String(kKeyTask, AttrOp::kEq, "t")};
  const AttributeVector b = {ConfIs(0.9)};  // no task actual
  EXPECT_FALSE(OneWayMatch(a, b));
}

TEST(MatchingTest, AllFormalsAreAnded) {
  const AttributeVector range = {
      Attribute::Float64(kKeyXCoord, AttrOp::kGe, 0.0),
      Attribute::Float64(kKeyXCoord, AttrOp::kLe, 10.0),
  };
  EXPECT_TRUE(OneWayMatch(range, {Attribute::Float64(kKeyXCoord, AttrOp::kIs, 5.0)}));
  EXPECT_FALSE(OneWayMatch(range, {Attribute::Float64(kKeyXCoord, AttrOp::kIs, 15.0)}));
  EXPECT_FALSE(OneWayMatch(range, {Attribute::Float64(kKeyXCoord, AttrOp::kIs, -1.0)}));
}

TEST(MatchingTest, SetWithNoFormalsMatchesTrivially) {
  EXPECT_TRUE(OneWayMatch({}, {}));
  EXPECT_TRUE(OneWayMatch({ConfIs(1)}, {}));
}

TEST(MatchingTest, TwoWayRequiresBothDirections) {
  const AttributeVector interest = {Conf(AttrOp::kGt, 0.5), ClassIs(kClassInterest)};
  const AttributeVector data = {ConfIs(0.7), ClassIs(kClassData)};
  EXPECT_TRUE(TwoWayMatch(interest, data));

  const AttributeVector demanding_data = {ConfIs(0.7),
                                          Attribute::String(kKeyTask, AttrOp::kEq, "x")};
  EXPECT_FALSE(TwoWayMatch(interest, demanding_data));  // data's formal unsatisfied
}

// The full §3.2 worked example.
TEST(MatchingTest, FourLeggedAnimalScenario) {
  const AttributeVector interest = FourLeggedAnimalInterest();
  const AttributeVector detection = FourLeggedAnimalDetection();
  const AttributeVector sensor_watch = FourLeggedSensorWatch();

  // The detection satisfies the user's query.
  EXPECT_TRUE(TwoWayMatch(interest, detection));
  // The sensor's "interest about interests" matches the user's interest.
  EXPECT_TRUE(TwoWayMatch(sensor_watch, interest));
  // But the sensor watch does not match plain data.
  EXPECT_FALSE(TwoWayMatch(sensor_watch, detection));

  // A detection outside the rectangle fails.
  AttributeVector outside = detection;
  RemoveAttributes(&outside, kKeyXCoord);
  outside.push_back(Attribute::Float64(kKeyXCoord, AttrOp::kIs, 500.0));
  EXPECT_FALSE(TwoWayMatch(interest, outside));
}

// Figure 10's sets as used by the §6.3 microbenchmark.
TEST(MatchingTest, Figure10Sets) {
  const AttributeVector set_a = AnimalInterestSetA();
  const AttributeVector set_b = AnimalDataSetB();
  EXPECT_EQ(set_a.size(), 8u);
  EXPECT_EQ(set_b.size(), 6u);
  EXPECT_TRUE(TwoWayMatch(set_a, set_b));
  EXPECT_FALSE(TwoWayMatch(set_a, MakeNoMatch(set_b)));
}

TEST(MatchingTest, Figure10GrownSetsStillMatch) {
  const AttributeVector set_a = AnimalInterestSetA();
  for (size_t n : {6u, 10u, 20u, 30u}) {
    const AttributeVector is_grown = GrowSetB(n, SetGrowth::kActualIs);
    EXPECT_EQ(is_grown.size(), n);
    EXPECT_TRUE(TwoWayMatch(set_a, is_grown)) << "IS-grown to " << n;
    const AttributeVector eq_grown = GrowSetB(n, SetGrowth::kFormalEq);
    EXPECT_EQ(eq_grown.size(), n);
    EXPECT_TRUE(TwoWayMatch(set_a, eq_grown)) << "EQ-grown to " << n;
    EXPECT_FALSE(TwoWayMatch(set_a, MakeNoMatch(is_grown)));
    EXPECT_FALSE(TwoWayMatch(set_a, MakeNoMatch(eq_grown)));
  }
}

TEST(MatchingTest, ExactMatchIsOrderInsensitive) {
  AttributeVector a = AnimalInterestSetA();
  AttributeVector shuffled = a;
  std::swap(shuffled[0], shuffled[5]);
  std::swap(shuffled[2], shuffled[7]);
  EXPECT_TRUE(ExactMatch(a, shuffled));
  shuffled.pop_back();
  EXPECT_FALSE(ExactMatch(a, shuffled));
}

TEST(MatchingTest, ExactMatchDetectsValueDifference) {
  AttributeVector a = AnimalDataSetB();
  AttributeVector b = MakeNoMatch(a);
  EXPECT_FALSE(ExactMatch(a, b));
  EXPECT_TRUE(ExactMatch(a, a));
}

TEST(MatchingTest, ExactMatchHandlesDuplicateAttributes) {
  const Attribute x = ConfIs(1);
  const Attribute y = ConfIs(2);
  EXPECT_TRUE(ExactMatch({x, x, y}, {y, x, x}));
  EXPECT_FALSE(ExactMatch({x, x, y}, {x, y, y}));
}

TEST(MatchingTest, HashIsOrderInsensitive) {
  AttributeVector a = AnimalInterestSetA();
  AttributeVector shuffled = a;
  std::swap(shuffled[1], shuffled[6]);
  std::swap(shuffled[0], shuffled[3]);
  EXPECT_EQ(HashAttributes(a), HashAttributes(shuffled));
}

TEST(MatchingTest, HashDiscriminates) {
  EXPECT_NE(HashAttributes(AnimalInterestSetA()), HashAttributes(AnimalDataSetB()));
  EXPECT_NE(HashAttributes(AnimalDataSetB()), HashAttributes(MakeNoMatch(AnimalDataSetB())));
  EXPECT_NE(HashAttributes({}), HashAttributes({ConfIs(0)}));
}

// Property sweep: two-way matching is symmetric by construction, and
// exact-equal sets always two-way match (actuals impose no requirements and
// identical formals are satisfied iff they are in both — actually identical
// formals must be satisfied by actuals, so we only assert hash/exact
// consistency here).
class MatchingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatchingPropertyTest, HashConsistentWithExactMatch) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
  AttributeVector a;
  const int count = static_cast<int>(rng.NextInt(0, 12));
  for (int i = 0; i < count; ++i) {
    a.push_back(Attribute::Int32(static_cast<AttrKey>(rng.NextInt(1, 5)),
                                 static_cast<AttrOp>(rng.NextInt(0, 7)),
                                 static_cast<int32_t>(rng.NextInt(0, 3))));
  }
  AttributeVector b = a;
  // Shuffle b.
  for (size_t i = b.size(); i > 1; --i) {
    std::swap(b[i - 1], b[static_cast<size_t>(rng.NextInt(0, static_cast<int64_t>(i) - 1))]);
  }
  EXPECT_TRUE(ExactMatch(a, b));
  EXPECT_EQ(HashAttributes(a), HashAttributes(b));
  EXPECT_EQ(TwoWayMatch(a, b), TwoWayMatch(b, a));  // symmetry
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, MatchingPropertyTest, ::testing::Range(0, 30));

// Inequality operators over the doubles that break naive orderings: the
// merge-scan fast path must agree with the linear reference on every
// (formal op, formal value, actual value) combination, including NaN (never
// satisfies a comparison, always satisfies NE), the infinities, -0.0
// (equal to +0.0), and the extremes of the exponent range.
TEST(MatchingTest, ExtremeValueInequalityAgreesWithLinearReference) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  const double values[] = {-kInf, -1e308, -5.0, -1e-308, -0.0, 0.0,
                           1e-308, 5.0,   1e308, kInf,   kNaN};
  const AttrOp ops[] = {AttrOp::kEq, AttrOp::kNe, AttrOp::kLe, AttrOp::kGe,
                        AttrOp::kLt, AttrOp::kGt, AttrOp::kEqAny};
  for (AttrOp op : ops) {
    for (double formal_value : values) {
      for (double actual_value : values) {
        const AttributeVector a = {Conf(op, formal_value)};
        const AttributeVector b = {ConfIs(actual_value)};
        const bool linear = OneWayMatchLinear(a, b);
        EXPECT_EQ(OneWayMatch(AttributeSet(a), AttributeSet(b)), linear)
            << AttrOpName(op) << " " << formal_value << " vs IS " << actual_value;
        // Spot-check a few ground truths the reference itself must honor.
        if (std::isnan(actual_value) || std::isnan(formal_value)) {
          EXPECT_EQ(linear, op == AttrOp::kNe || op == AttrOp::kEqAny);
        }
      }
    }
  }
  // -0.0 and +0.0 are the same number to every comparison.
  EXPECT_TRUE(OneWayMatch(AttributeSet({Conf(AttrOp::kEq, -0.0)}), AttributeSet({ConfIs(0.0)})));
  EXPECT_TRUE(OneWayMatch(AttributeSet({Conf(AttrOp::kLe, -0.0)}), AttributeSet({ConfIs(0.0)})));
  EXPECT_FALSE(OneWayMatch(AttributeSet({Conf(AttrOp::kLt, 0.0)}), AttributeSet({ConfIs(-0.0)})));
}

}  // namespace
}  // namespace diffusion
