// API misuse paths introduced by this PR's typed-handle/ApiResult surface,
// plus randomized equivalence of the dispatch fast path (AttributeSet +
// MatchIndex) against the pre-PR reference algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/match_index.h"
#include "src/core/node.h"
#include "src/naming/keys.h"
#include "src/naming/matching.h"
#include "src/trace/trace.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace diffusion {
namespace {

using testing_support::FastRadio;
using testing_support::MakeCliqueChannel;

AttributeVector Query() {
  return {ClassEq(kClassData), Attribute::String(kKeyType, AttrOp::kEq, "light")};
}

AttributeVector Publication() {
  return {Attribute::String(kKeyType, AttrOp::kIs, "light")};
}

AttributeVector Reading(int32_t value) {
  return {Attribute::Int32(kKeySequence, AttrOp::kIs, value)};
}

// ---- ApiResult misuse paths ----

TEST(ApiMisuseTest, DoubleUnsubscribe) {
  Simulator sim(1);
  auto channel = MakeCliqueChannel(&sim, 1);
  DiffusionNode node(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  const SubscriptionHandle sub = node.Subscribe(Query(), [](const AttributeVector&) {});
  EXPECT_EQ(node.Unsubscribe(sub), ApiResult::kOk);
  EXPECT_EQ(node.Unsubscribe(sub), ApiResult::kUnknownHandle);
}

TEST(ApiMisuseTest, DoubleUnpublishAndSendAfterUnpublish) {
  Simulator sim(2);
  auto channel = MakeCliqueChannel(&sim, 2);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode source(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  int received = 0;
  (void)sink.Subscribe(Query(), [&](const AttributeVector&) { ++received; });
  const PublicationHandle pub = source.Publish(Publication());
  sim.RunUntil(kSecond);
  EXPECT_EQ(source.Send(pub, Reading(1)), ApiResult::kOk);
  EXPECT_EQ(source.Unpublish(pub), ApiResult::kOk);
  EXPECT_EQ(source.Unpublish(pub), ApiResult::kUnknownHandle);
  // The handle is dead: sending must fail crisply, not silently drop.
  EXPECT_EQ(source.Send(pub, Reading(2)), ApiResult::kUnknownHandle);
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(received, 1);
}

TEST(ApiMisuseTest, SendOnDeadNode) {
  Simulator sim(3);
  auto channel = MakeCliqueChannel(&sim, 1);
  DiffusionNode node(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  const PublicationHandle pub = node.Publish(Publication());
  node.Kill();
  EXPECT_EQ(node.Send(pub, Reading(1)), ApiResult::kNodeDead);
}

// A filter that removes itself inside its callback and then re-injects with
// its (now dead) handle: the message must still reach the core, and the node
// must record the stale re-injection in its stats and in the trace.
TEST(ApiMisuseTest, SelfRemovingFilterIsCountedAndTraced) {
  Simulator sim(4);
  auto channel = MakeCliqueChannel(&sim, 1);
  MemoryTraceSink trace;
  sim.set_trace_sink(&trace);
  DiffusionNode node(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  FilterHandle handle = kInvalidHandle;
  handle = node.AddFilter(Query(), 10, [&](Message& message, FilterApi& api) {
    (void)node.RemoveFilter(handle);
    api.SendMessage(std::move(message), handle);
  });
  int delivered = 0;
  (void)node.Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = node.Publish(Publication());
  sim.RunUntil(100 * kMillisecond);
  EXPECT_EQ(node.Send(pub, Reading(1)), ApiResult::kOk);
  sim.RunUntil(kSecond);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(node.stats().stale_filter_reinjections, 1u);

  int stale_events = 0;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kStaleFilterReinjected) {
      ++stale_events;
      EXPECT_EQ(event.node, 1u);
      EXPECT_EQ(event.value, static_cast<int64_t>(handle.value()));
    }
  }
  EXPECT_EQ(stale_events, 1);
}

// ---- randomized equivalence: fast path vs reference ----

Attribute RandomAttribute(Rng* rng) {
  // A small key pool with repeats, so same-key runs and the discriminator
  // key (class) are well exercised.
  static const AttrKey kKeys[] = {kKeyClass, kKeyType, kKeyTask,  kKeyConfidence,
                                  kKeyXCoord, kKeySequence, kKeyTarget};
  const AttrKey key = kKeys[rng->NextInt(0, 6)];
  const AttrOp op = static_cast<AttrOp>(rng->NextInt(0, 7));  // kIs..kEqAny
  switch (rng->NextInt(0, 3)) {
    case 0:
      return Attribute::Int32(key, op, static_cast<int32_t>(rng->NextInt(0, 3)));
    case 1:
      return Attribute::Float64(key, op, static_cast<double>(rng->NextInt(0, 3)));
    case 2:
      return Attribute::String(key, op, "v" + std::to_string(rng->NextInt(0, 3)));
    default:
      return Attribute::Blob(key, op, {static_cast<uint8_t>(rng->NextInt(0, 3))});
  }
}

AttributeVector RandomSet(Rng* rng, int min_attrs, int max_attrs) {
  AttributeVector attrs;
  const int count = static_cast<int>(rng->NextInt(min_attrs, max_attrs));
  for (int i = 0; i < count; ++i) {
    attrs.push_back(RandomAttribute(rng));
  }
  return attrs;
}

TEST(MatchEquivalenceTest, MergeScanAgreesWithLinearReference) {
  Rng rng(42);
  for (int iter = 0; iter < 2000; ++iter) {
    const AttributeVector a = RandomSet(&rng, 0, 8);
    const AttributeVector b = RandomSet(&rng, 0, 8);
    const AttributeSet sa(a);
    const AttributeSet sb(b);
    EXPECT_EQ(OneWayMatch(sa, sb), OneWayMatchLinear(a, b));
    EXPECT_EQ(TwoWayMatch(sa, sb), TwoWayMatchLinear(a, b));
    EXPECT_EQ(ExactMatch(sa, sb), ExactMatchLinear(a, b));
  }
}

TEST(MatchEquivalenceTest, AttributeSetHashMatchesVectorHash) {
  Rng rng(43);
  for (int iter = 0; iter < 500; ++iter) {
    const AttributeVector attrs = RandomSet(&rng, 0, 8);
    const AttributeSet set(attrs);
    // Canonicalization must not change the order-insensitive hash.
    EXPECT_EQ(set.hash(), HashAttributes(attrs));
  }
}

TEST(MatchEquivalenceTest, IncrementalAddRemoveKeepsHashCanonical) {
  Rng rng(44);
  for (int iter = 0; iter < 200; ++iter) {
    AttributeSet set;
    AttributeVector mirror;
    for (int i = 0; i < 6; ++i) {
      const Attribute attr = RandomAttribute(&rng);
      set.Add(attr);
      mirror.push_back(attr);
    }
    EXPECT_EQ(set.hash(), HashAttributes(mirror));
    const AttrKey victim = mirror[static_cast<size_t>(rng.NextInt(0, 5))].key();
    set.RemoveKey(victim);
    mirror.erase(std::remove_if(mirror.begin(), mirror.end(),
                                [&](const Attribute& a) { return a.key() == victim; }),
                 mirror.end());
    EXPECT_EQ(set.hash(), HashAttributes(mirror));
    EXPECT_EQ(set, AttributeSet(mirror));
  }
}

// The MatchIndex dispatch must reproduce the full-chain scan exactly: same
// matched entries, visited in the same (ascending-id) order.
TEST(MatchEquivalenceTest, IndexedDispatchMatchesFullScan) {
  Rng rng(45);
  for (int iter = 0; iter < 300; ++iter) {
    // Entries lean on class formals like real filters/subscriptions do, but
    // a third are random (any_/unconstrained coverage).
    std::vector<AttributeSet> entries;
    for (int i = 0; i < 24; ++i) {
      AttributeVector attrs = RandomSet(&rng, 0, 4);
      if (i % 3 != 0) {
        attrs.push_back(rng.NextBool(0.5) ? ClassEq(kClassInterest) : ClassEq(kClassData));
      }
      entries.push_back(AttributeSet(std::move(attrs)));
    }
    MatchIndex index(kKeyClass);
    for (size_t i = 0; i < entries.size(); ++i) {
      index.Insert(static_cast<uint32_t>(i), 0, &entries[i]);
    }

    AttributeVector message_attrs = RandomSet(&rng, 0, 6);
    if (rng.NextBool(0.8)) {
      message_attrs.push_back(rng.NextBool(0.5) ? ClassIs(kClassInterest) : ClassIs(kClassData));
    }
    const AttributeSet message(message_attrs);

    std::vector<uint32_t> full_scan;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (OneWayMatch(entries[i], message)) {
        full_scan.push_back(static_cast<uint32_t>(i));
      }
    }

    // Candidate collection mirrors DeliverLocalData: confirm each candidate.
    // The index guarantees at-most-once visits now, so a duplicate here is a
    // contract violation, not something to silently dedupe.
    std::vector<uint32_t> indexed;
    index.ForEachCandidate(message, [&](const MatchIndexEntry& entry) {
      if (OneWayMatch(*entry.attrs, message)) {
        indexed.push_back(entry.id);
      }
    });
    std::sort(indexed.begin(), indexed.end());
    ASSERT_TRUE(std::adjacent_find(indexed.begin(), indexed.end()) == indexed.end())
        << "duplicate candidate visit in iteration " << iter;

    ASSERT_EQ(indexed, full_scan) << "iteration " << iter;
  }
}

// ---- SendBatch: a burst must be indistinguishable from repeated Send ----

struct BurstRun {
  std::vector<TraceEvent> events;
  std::vector<int64_t> delivered;
  ApiResult result = ApiResult::kOk;
};

BurstRun RunBurst(bool use_batch) {
  Simulator sim(77);
  auto channel = MakeCliqueChannel(&sim, 2);
  MemoryTraceSink trace;
  sim.set_trace_sink(&trace);
  DiffusionNode sink(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  DiffusionNode source(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  BurstRun out;
  (void)sink.Subscribe(Query(), [&](const AttributeVector& attrs) {
    if (const Attribute* seq = FindActual(attrs, kKeySequence)) {
      out.delivered.push_back(*seq->AsInt());
    }
  });
  const PublicationHandle pub = source.Publish(Publication());
  sim.RunUntil(kSecond);
  std::vector<AttributeVector> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(Reading(i));
  }
  if (use_batch) {
    out.result = source.SendBatch(pub, batch);
  } else {
    for (const AttributeVector& extra : batch) {
      const ApiResult r = source.Send(pub, extra);
      if (out.result == ApiResult::kOk) {
        out.result = r;
      }
    }
  }
  sim.RunUntil(5 * kSecond);
  out.events = trace.events();
  return out;
}

TEST(SendBatchTest, BatchMatchesSequentialSendsExactly) {
  const BurstRun sequential = RunBurst(false);
  const BurstRun batched = RunBurst(true);
  EXPECT_FALSE(sequential.delivered.empty());
  EXPECT_EQ(batched.delivered, sequential.delivered);
  EXPECT_EQ(batched.result, sequential.result);
  ASSERT_EQ(batched.events.size(), sequential.events.size());
  for (size_t i = 0; i < sequential.events.size(); ++i) {
    ASSERT_TRUE(batched.events[i] == sequential.events[i]) << "trace diverges at event " << i;
  }
}

TEST(SendBatchTest, MisusePaths) {
  Simulator sim(5);
  auto channel = MakeCliqueChannel(&sim, 1);
  DiffusionNode node(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  EXPECT_EQ(node.SendBatch(PublicationHandle{999}, {Reading(1)}), ApiResult::kUnknownHandle);
  const PublicationHandle pub = node.Publish(Publication());
  EXPECT_EQ(node.SendBatch(pub, {}), ApiResult::kOk);  // empty burst: nothing to do
  // No interest anywhere: every message fails the same way one Send would.
  EXPECT_EQ(node.SendBatch(pub, {Reading(1), Reading(2)}), ApiResult::kNoMatchingInterest);
  node.Kill();
  EXPECT_EQ(node.SendBatch(pub, {Reading(3)}), ApiResult::kNodeDead);
}

// A filter that mutates the chain mid-batch invalidates the precomputed
// winners; the remaining messages must re-select per message and still all
// arrive.
TEST(SendBatchTest, ChainMutationMidBatchFallsBackPerMessage) {
  Simulator sim(6);
  auto channel = MakeCliqueChannel(&sim, 1);
  DiffusionNode node(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  int delivered = 0;
  (void)node.Subscribe(Query(), [&](const AttributeVector&) { ++delivered; });
  const PublicationHandle pub = node.Publish(Publication());
  sim.RunUntil(100 * kMillisecond);
  int filter_hits = 0;
  FilterHandle handle = kInvalidHandle;
  handle = node.AddFilter(Query(), 10, [&](Message& message, FilterApi& api) {
    ++filter_hits;
    (void)node.RemoveFilter(handle);  // version bump: later winners are stale
    api.SendMessage(std::move(message), handle);
  });
  EXPECT_EQ(node.SendBatch(pub, {Reading(1), Reading(2), Reading(3)}), ApiResult::kOk);
  sim.RunUntil(kSecond);
  EXPECT_EQ(filter_hits, 1);  // removed itself after the first message
  EXPECT_EQ(delivered, 3);    // every message still reached the core
  EXPECT_EQ(node.stats().stale_filter_reinjections, 1u);
}

}  // namespace
}  // namespace diffusion
