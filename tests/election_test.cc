// Tests for the §5.2 sensor election (SRM-style distance-weighted timers).

#include <gtest/gtest.h>

#include "src/apps/election.h"
#include "src/core/node.h"
#include "tests/test_util.h"

namespace diffusion {
namespace {

using testing_support::FastRadio;
using testing_support::MakeCliqueChannel;
using testing_support::MakeLineChannel;

struct Participant {
  std::unique_ptr<DiffusionNode> node;
  std::unique_ptr<SensorElection> election;
  std::optional<NodeId> winner;
  bool won = false;
};

TEST(ElectionTest, MostCentralSensorWins) {
  Simulator sim(71);
  auto channel = MakeCliqueChannel(&sim, 4);
  // Metrics = distance to the point of interest; node 3 is the most central.
  const double metrics[] = {8.0, 5.0, 1.5, 6.0};
  std::vector<Participant> participants(4);
  for (NodeId id = 1; id <= 4; ++id) {
    Participant& p = participants[id - 1];
    p.node = std::make_unique<DiffusionNode>(&sim, channel.get(), id,
                                             NodeOptions{.radio = FastRadio()});
    p.election = std::make_unique<SensorElection>(p.node.get(), "audio-election",
                                                  metrics[id - 1]);
  }
  sim.RunUntil(kSecond);  // let claim interests flood first
  for (Participant& p : participants) {
    p.election->Start([&p](NodeId winner, bool won) {
      p.winner = winner;
      p.won = won;
    });
  }
  sim.RunUntil(kMinute);

  for (const Participant& p : participants) {
    ASSERT_TRUE(p.election->decided());
    EXPECT_EQ(p.winner.value_or(0), 3u);  // the most central node
  }
  EXPECT_FALSE(participants[0].won);
  EXPECT_TRUE(participants[2].won);
}

TEST(ElectionTest, TimersSuppressMostClaims) {
  // With well-separated metrics, the winner's early claim silences the rest:
  // only one nomination goes on the air.
  Simulator sim(72);
  auto channel = MakeCliqueChannel(&sim, 5);
  const double metrics[] = {2.0, 10.0, 14.0, 18.0, 25.0};
  std::vector<Participant> participants(5);
  for (NodeId id = 1; id <= 5; ++id) {
    Participant& p = participants[id - 1];
    p.node = std::make_unique<DiffusionNode>(&sim, channel.get(), id,
                                             NodeOptions{.radio = FastRadio()});
    p.election = std::make_unique<SensorElection>(p.node.get(), "topic", metrics[id - 1]);
  }
  sim.RunUntil(kSecond);
  for (Participant& p : participants) {
    p.election->Start([](NodeId, bool) {});
  }
  sim.RunUntil(kMinute);

  int claims = 0;
  for (const Participant& p : participants) {
    if (p.election->claimed()) {
      ++claims;
    }
    EXPECT_EQ(p.election->winner().value_or(0), 1u);
  }
  EXPECT_EQ(claims, 1);
}

TEST(ElectionTest, BetterPeerDisputesEarlyClaim) {
  // Force the *worse* sensor to claim first (its per-metric delay is tiny);
  // the better peer's later claim must dispute and win everywhere.
  Simulator sim(73);
  auto channel = MakeCliqueChannel(&sim, 2);
  Participant worse;
  Participant better;
  worse.node =
      std::make_unique<DiffusionNode>(&sim, channel.get(), 1, NodeOptions{.radio = FastRadio()});
  better.node =
      std::make_unique<DiffusionNode>(&sim, channel.get(), 2, NodeOptions{.radio = FastRadio()});
  ElectionConfig eager;  // the worse node fires almost immediately
  eager.delay_per_metric = 1 * kMillisecond;
  eager.jitter = 1;
  ElectionConfig lazy;  // the better node waits far longer than the worse one
  lazy.delay_per_metric = 2 * kSecond;
  lazy.jitter = 1;
  worse.election = std::make_unique<SensorElection>(worse.node.get(), "t", 9.0, eager);
  better.election = std::make_unique<SensorElection>(better.node.get(), "t", 2.0, lazy);
  sim.RunUntil(kSecond);
  worse.election->Start([&worse](NodeId winner, bool won) {
    worse.winner = winner;
    worse.won = won;
  });
  better.election->Start([&better](NodeId winner, bool won) {
    better.winner = winner;
    better.won = won;
  });
  sim.RunUntil(kMinute);

  // Both claimed (the worse one first), but everyone settles on the better.
  EXPECT_TRUE(worse.election->claimed());
  EXPECT_TRUE(better.election->claimed());
  EXPECT_EQ(worse.winner.value_or(0), 2u);
  EXPECT_EQ(better.winner.value_or(0), 2u);
  EXPECT_FALSE(worse.won);
  EXPECT_TRUE(better.won);
}

TEST(ElectionTest, TiesBreakByNodeId) {
  Simulator sim(74);
  auto channel = MakeCliqueChannel(&sim, 3);
  std::vector<Participant> participants(3);
  for (NodeId id = 1; id <= 3; ++id) {
    Participant& p = participants[id - 1];
    p.node = std::make_unique<DiffusionNode>(&sim, channel.get(), id,
                                             NodeOptions{.radio = FastRadio()});
    p.election = std::make_unique<SensorElection>(p.node.get(), "tie", 5.0);
  }
  sim.RunUntil(kSecond);
  for (Participant& p : participants) {
    p.election->Start([](NodeId, bool) {});
  }
  sim.RunUntil(kMinute);
  for (const Participant& p : participants) {
    EXPECT_EQ(p.election->winner().value_or(0), 1u);  // lowest id wins ties
  }
}

TEST(ElectionTest, LoneParticipantElectsItself) {
  Simulator sim(75);
  auto channel = MakeCliqueChannel(&sim, 1);
  DiffusionNode node(&sim, channel.get(), 7, NodeOptions{.radio = FastRadio()});
  SensorElection election(&node, "solo", 3.0);
  std::optional<NodeId> winner;
  election.Start([&winner](NodeId id, bool won) {
    winner = id;
    EXPECT_TRUE(won);
  });
  sim.RunUntil(kMinute);
  EXPECT_EQ(winner.value_or(0), 7u);
}

TEST(ElectionTest, WorksAcrossMultipleHops) {
  Simulator sim(76);
  auto channel = MakeLineChannel(&sim, 4);
  const double metrics[] = {7.0, 3.0, 1.0, 9.0};
  std::vector<Participant> participants(4);
  for (NodeId id = 1; id <= 4; ++id) {
    Participant& p = participants[id - 1];
    p.node = std::make_unique<DiffusionNode>(&sim, channel.get(), id,
                                             NodeOptions{.radio = FastRadio()});
    ElectionConfig config;
    config.delay_per_metric = kSecond;  // give claims time to diffuse 3 hops
    config.settle_time = 30 * kSecond;
    // Stagger the joins: four simultaneous interest floods from hidden
    // terminals on a line would collide (cf. the forward-jitter rationale);
    // real participants don't boot at one instant.
    sim.RunUntil(sim.now() + 500 * kMillisecond);
    p.election = std::make_unique<SensorElection>(p.node.get(), "line", metrics[id - 1], config);
  }
  sim.RunUntil(3 * kSecond);
  for (Participant& p : participants) {
    p.election->Start([](NodeId, bool) {});
  }
  sim.RunUntil(2 * kMinute);
  for (const Participant& p : participants) {
    EXPECT_EQ(p.election->winner().value_or(0), 3u) << "node " << p.node->id();
  }
}

}  // namespace
}  // namespace diffusion
