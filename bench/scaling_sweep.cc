// Scalability sweep — the prior-work claim §1 leans on: "[the simulation
// study] evaluated their performance through simulation, finding that
// scalability is good as numbers of nodes and traffic increases."
//
// Sweeps the network size with the simulation-era configuration (1.6 Mb/s
// radios, 5 sources, 5 sinks, suppression on) and reports bytes per event
// and event delivery. Expected shape: bytes/event grows sub-linearly with
// node count (floods touch every node, but the reinforced data paths don't),
// and delivery stays high.

#include <chrono>
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_json.h"
#include "bench/replicate.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"

namespace diffusion {
namespace {

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 3));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 5000));
  const unsigned jobs = bench::JobsFlag(argc, argv);
  // Flight recorder: trace the first (smallest-network) run only.
  const std::string trace_out = bench::StringFlag(argc, argv, "trace-out");
  // Wall-clock per sweep point in diffusion-bench-v1 form — the matching
  // fast path shows up here as simulator throughput.
  const std::string bench_json_out = bench::StringFlag(argc, argv, "bench-json");

  const size_t node_counts[] = {30, 50, 80, 120};

  if (!trace_out.empty()) {
    std::printf("writing JSONL trace of the first %zu-node run to %s\n", node_counts[0],
                trace_out.c_str());
  }

  std::printf("=== Scalability sweep (5 sources, 5 sinks, suppression on, 1.6 Mb/s,\n");
  std::printf("    %d runs x %d min per point, %u jobs) ===\n\n", runs, minutes, jobs);
  std::printf("%-8s  %-18s  %-18s  %-14s\n", "nodes", "bytes/event", "delivery %",
              "bytes/event/node");

  double first_per_node = 0.0;
  std::vector<bench::BenchResult> wall_clock;
  for (size_t nodes : node_counts) {
    RunningStat bytes;
    RunningStat delivery;
    const auto wall_start = std::chrono::steady_clock::now();
    // One batch per sweep point: its `runs` replicates execute --jobs at a
    // time, and the wall-clock below measures the whole batch. Only the
    // first point's first replicate traces.
    const std::vector<ScaleResult> results = bench::RunReplicates<ScaleResult>(
        jobs, static_cast<size_t>(runs), nodes == node_counts[0] ? trace_out : "", nullptr,
        [nodes, minutes, base_seed](size_t run, TraceSink* sink) {
          ScaleParams params;
          params.nodes = nodes;
          // Scale the field with the node count to hold density (and hop
          // counts per unit area) roughly constant.
          params.field_size = 100.0 * std::sqrt(static_cast<double>(nodes) / 50.0);
          params.duration = static_cast<SimDuration>(minutes) * kMinute;
          params.seed = base_seed + run;
          params.trace_sink = sink;
          return RunScaleExperiment(params);
        });
    for (const ScaleResult& result : results) {
      bytes.Add(result.bytes_per_event);
      delivery.Add(result.delivery_rate * 100.0);
    }
    const double wall_ms =
        static_cast<double>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - wall_start)
                                .count()) /
        static_cast<double>(runs);
    wall_clock.push_back({"wall_clock_" + std::to_string(nodes) + "_nodes", "ms/run", wall_ms});
    const double per_node = bytes.mean() / static_cast<double>(nodes);
    if (first_per_node == 0.0) {
      first_per_node = per_node;
    }
    std::printf("%-8zu  %-18s  %-18s  %-14.1f\n", nodes, FormatWithCI(bytes, 0).c_str(),
                FormatWithCI(delivery, 1).c_str(), per_node);
  }
  std::printf("\nShape to check: per-node cost roughly flat or falling as the network grows\n");
  std::printf("(flood cost is linear in nodes, data-path cost is linear in hops only).\n");
  if (!bench_json_out.empty()) {
    if (!bench::WriteBenchJson(bench_json_out, "scaling_sweep", wall_clock)) {
      return 1;
    }
    std::printf("wrote %s\n", bench_json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
