// Figure 11 — "Matching performance as the number of attributes grow."
//
// Reproduces §6.3's methodology: two-way matching of the Figure-10 interest
// (Set A, 8 attributes) against a data set (Set B) grown from 6 to 30
// attributes, four series: match/IS (extra actuals), match/EQ (extra
// formals), no-match/IS and no-match/EQ (Set B's confidence flipped from 90
// to 10 so Set A's "confidence GT 50" fails). Each measurement times a loop
// of 5,000 matches (10,000 for the cheaper non-matching case), repeated
// --reps times with re-randomized attribute order, reported as mean ± 95% CI
// per match.
//
// Expected shape (paper, on a 66 MHz 486): cost linear in the attribute
// count; the no-match lines are cheap and flat; match/EQ grows fastest
// (every added formal must be searched); match/IS grows more slowly. The
// absolute numbers here reflect the host CPU, not the PC/104 node; the paper
// measured ~500 µs per small-set match at 66 MHz.

#include <chrono>
#include <cstdio>

#include "bench/bench_flags.h"
#include "src/apps/animal.h"
#include "src/naming/matching.h"
#include "src/testbed/harness.h"
#include "src/util/rng.h"

namespace diffusion {
namespace {

void Shuffle(AttributeVector* attrs, Rng* rng) {
  for (size_t i = attrs->size(); i > 1; --i) {
    std::swap((*attrs)[i - 1],
              (*attrs)[static_cast<size_t>(rng->NextInt(0, static_cast<int64_t>(i) - 1))]);
  }
}

// Nanoseconds per TwoWayMatch(a, b), measured over `iterations` calls.
double TimeMatch(const AttributeVector& a, const AttributeVector& b, int iterations) {
  // Warm caches.
  volatile bool sink = false;
  for (int i = 0; i < 100; ++i) {
    sink = sink ^ TwoWayMatch(a, b);
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    sink = sink ^ TwoWayMatch(a, b);
  }
  const auto end = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(end - start).count() / iterations;
}

int Main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::IntFlag(argc, argv, "reps", 25));
  const uint64_t seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 42));

  std::printf("=== Figure 11: two-way matching cost vs attributes in Set B ===\n");
  std::printf("(ns per match, mean ± 95%% CI over %d repetitions with randomized order;\n", reps);
  std::printf(" match loops 5000x, no-match loops 10000x, per the paper's method)\n\n");
  std::printf("%-6s  %-18s  %-18s  %-18s  %-18s\n", "attrs", "match/IS", "match/EQ",
              "no-match/IS", "no-match/EQ");

  Rng rng(seed);
  const AttributeVector set_a = AnimalInterestSetA();
  for (size_t attrs = 6; attrs <= 30; attrs += 2) {
    RunningStat match_is;
    RunningStat match_eq;
    RunningStat nomatch_is;
    RunningStat nomatch_eq;
    for (int rep = 0; rep < reps; ++rep) {
      AttributeVector a = set_a;
      AttributeVector b_is = GrowSetB(attrs, SetGrowth::kActualIs);
      AttributeVector b_eq = GrowSetB(attrs, SetGrowth::kFormalEq);
      AttributeVector b_is_bad = MakeNoMatch(b_is);
      AttributeVector b_eq_bad = MakeNoMatch(b_eq);
      Shuffle(&a, &rng);
      Shuffle(&b_is, &rng);
      Shuffle(&b_eq, &rng);
      Shuffle(&b_is_bad, &rng);
      Shuffle(&b_eq_bad, &rng);
      match_is.Add(TimeMatch(a, b_is, 5000));
      match_eq.Add(TimeMatch(a, b_eq, 5000));
      nomatch_is.Add(TimeMatch(a, b_is_bad, 10000));
      nomatch_eq.Add(TimeMatch(a, b_eq_bad, 10000));
    }
    std::printf("%-6zu  %-18s  %-18s  %-18s  %-18s\n", attrs, FormatWithCI(match_is, 1).c_str(),
                FormatWithCI(match_eq, 1).c_str(), FormatWithCI(nomatch_is, 1).c_str(),
                FormatWithCI(nomatch_eq, 1).c_str());
  }
  std::printf(
      "\nShape to check against the paper: all lines linear; no-match lines cheap and\n"
      "nearly flat; match/EQ steeper than match/IS (added formals must be searched,\n"
      "added actuals only scanned).\n");
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
