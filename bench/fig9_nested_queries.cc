// Figure 9 — "Percentage of audio events successfully delivered to the
// user" for nested versus flat (one-level) queries.
//
// Reproduces §6.2: ISI testbed topology, user at node 39, audio sensor at
// node 20, light sensors at 16/25/22/13. Lights toggle every minute on the
// minute and report state every 2 s (~100-byte messages); the audio sensor
// produces a ~100-byte clip per light-change event. In nested mode the audio
// node sub-tasks the lights (3 data hops end-to-end); in flat mode light
// reports cross the network to the user and the audio clips follow (5 data
// hops). Each point: mean of --runs x --minutes-long windows with 95% CI —
// the paper used three 20-minute experiments.
//
// Replicates run --jobs at a time (bench/replicate.h); the table, the
// --bench-json file and the merged --trace-out are byte-identical for every
// --jobs value.
//
// Expected shape (paper): the nested query delivers more than the flat query
// everywhere; both fall off as sensors are added, the flat query faster; the
// flat query also moves substantially more bytes.

#include <cstdio>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_json.h"
#include "bench/replicate.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"

namespace diffusion {
namespace {

// One replicate of the sweep: a (lights, run, nested-or-flat) cell.
struct Cell {
  int lights;
  int run;
  bool nested;
};

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 20));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 2000));
  const bool triggered = bench::BoolFlag(argc, argv, "triggered");
  const unsigned jobs = bench::JobsFlag(argc, argv);
  // Flight recorder: trace the first nested run only.
  const std::string trace_out = bench::StringFlag(argc, argv, "trace-out");
  // Deterministic diffusion-bench-v1 export; byte-identical at every --jobs.
  const std::string bench_json_out = bench::StringFlag(argc, argv, "bench-json");

  const QueryMode flat_mode = triggered ? QueryMode::kFlatTriggered : QueryMode::kFlat;
  const int light_counts[] = {1, 2, 4};

  std::vector<Cell> cells;
  for (int lights : light_counts) {
    for (int run = 0; run < runs; ++run) {
      cells.push_back({lights, run, true});
      cells.push_back({lights, run, false});
    }
  }

  const std::vector<Fig9Result> results = bench::RunReplicates<Fig9Result>(
      jobs, cells.size(), trace_out,
      [](size_t i) { return i == 0; },  // cells[0] is the first nested run
      [&cells, minutes, base_seed, flat_mode](size_t i, TraceSink* sink) {
        const Cell& cell = cells[i];
        Fig9Params params;
        params.lights = cell.lights;
        params.duration = static_cast<SimDuration>(minutes) * kMinute;
        params.seed = base_seed + static_cast<uint64_t>(cell.run);
        params.mode = cell.nested ? QueryMode::kNested : flat_mode;
        params.trace_sink = sink;
        return RunFig9(params);
      });

  if (!trace_out.empty()) {
    std::printf("wrote JSONL trace of the first nested run to %s\n", trace_out.c_str());
  }

  std::printf("=== Figure 9: %% of light-change events delivering audio to the user ===\n");
  std::printf("(%d runs x %d min per point, %u jobs; mean ± 95%% CI; flat mode: %s)\n\n", runs,
              minutes, jobs, triggered ? "per-event triggered queries" : "one-level data correlation");
  std::printf("%-8s  %-20s  %-20s  %-16s  %-16s\n", "sensors", "nested %", "flat %",
              "nested bytes", "flat bytes");

  std::vector<bench::BenchResult> bench_results;
  size_t index = 0;
  for (int lights : light_counts) {
    RunningStat nested_pct;
    RunningStat flat_pct;
    RunningStat nested_bytes;
    RunningStat flat_bytes;
    for (int run = 0; run < runs; ++run) {
      const Fig9Result& nested = results[index++];
      nested_pct.Add(nested.delivered_fraction * 100.0);
      nested_bytes.Add(static_cast<double>(nested.diffusion_bytes));
      const Fig9Result& flat = results[index++];
      flat_pct.Add(flat.delivered_fraction * 100.0);
      flat_bytes.Add(static_cast<double>(flat.diffusion_bytes));
    }
    std::printf("%-8d  %-20s  %-20s  %-16.0f  %-16.0f\n", lights,
                FormatWithCI(nested_pct, 1).c_str(), FormatWithCI(flat_pct, 1).c_str(),
                nested_bytes.mean(), flat_bytes.mean());
    const std::string point = std::to_string(lights) + "_sensors";
    bench_results.push_back({"nested_delivered_" + point, "%", nested_pct.mean()});
    bench_results.push_back({"nested_delivered_" + point + "_ci95", "%", nested_pct.confidence95()});
    bench_results.push_back({"flat_delivered_" + point, "%", flat_pct.mean()});
    bench_results.push_back({"flat_delivered_" + point + "_ci95", "%", flat_pct.confidence95()});
    bench_results.push_back({"nested_bytes_" + point, "B", nested_bytes.mean()});
    bench_results.push_back({"flat_bytes_" + point, "B", flat_bytes.mean()});
  }
  std::printf(
      "\nLocalizing data near the triggering event (nested) both delivers more events and\n"
      "moves fewer bytes — 'localizing the data to the sensors is very important to\n"
      "parsimonious use of bandwidth' (§6.2).\n");
  if (!bench_json_out.empty()) {
    if (!bench::WriteBenchJson(bench_json_out, "fig9_nested_queries", bench_results)) {
      return 1;
    }
    std::printf("wrote %s\n", bench_json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
