// Figure 9 — "Percentage of audio events successfully delivered to the
// user" for nested versus flat (one-level) queries.
//
// Reproduces §6.2: ISI testbed topology, user at node 39, audio sensor at
// node 20, light sensors at 16/25/22/13. Lights toggle every minute on the
// minute and report state every 2 s (~100-byte messages); the audio sensor
// produces a ~100-byte clip per light-change event. In nested mode the audio
// node sub-tasks the lights (3 data hops end-to-end); in flat mode light
// reports cross the network to the user and the audio clips follow (5 data
// hops). Each point: mean of --runs x --minutes-long windows with 95% CI —
// the paper used three 20-minute experiments.
//
// Expected shape (paper): the nested query delivers more than the flat query
// everywhere; both fall off as sensors are added, the flat query faster; the
// flat query also moves substantially more bytes.

#include <cstdio>

#include "bench/bench_flags.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"

namespace diffusion {
namespace {

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 20));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 2000));
  const bool triggered = bench::BoolFlag(argc, argv, "triggered");
  // Flight recorder: trace the first nested run only.
  const std::string trace_out = bench::StringFlag(argc, argv, "trace-out");

  const QueryMode flat_mode = triggered ? QueryMode::kFlatTriggered : QueryMode::kFlat;
  const int light_counts[] = {1, 2, 4};

  if (!trace_out.empty()) {
    std::printf("writing JSONL trace of the first nested run to %s\n", trace_out.c_str());
  }

  std::printf("=== Figure 9: %% of light-change events delivering audio to the user ===\n");
  std::printf("(%d runs x %d min per point; mean ± 95%% CI; flat mode: %s)\n\n", runs, minutes,
              triggered ? "per-event triggered queries" : "one-level data correlation");
  std::printf("%-8s  %-20s  %-20s  %-16s  %-16s\n", "sensors", "nested %", "flat %",
              "nested bytes", "flat bytes");

  for (int lights : light_counts) {
    RunningStat nested_pct;
    RunningStat flat_pct;
    RunningStat nested_bytes;
    RunningStat flat_bytes;
    for (int run = 0; run < runs; ++run) {
      Fig9Params params;
      params.lights = lights;
      params.duration = static_cast<SimDuration>(minutes) * kMinute;
      params.seed = base_seed + static_cast<uint64_t>(run);

      params.mode = QueryMode::kNested;
      params.trace_out = (lights == light_counts[0] && run == 0) ? trace_out : "";
      const Fig9Result nested = RunFig9(params);
      params.trace_out.clear();
      nested_pct.Add(nested.delivered_fraction * 100.0);
      nested_bytes.Add(static_cast<double>(nested.diffusion_bytes));

      params.mode = flat_mode;
      const Fig9Result flat = RunFig9(params);
      flat_pct.Add(flat.delivered_fraction * 100.0);
      flat_bytes.Add(static_cast<double>(flat.diffusion_bytes));
    }
    std::printf("%-8d  %-20s  %-20s  %-16.0f  %-16.0f\n", lights,
                FormatWithCI(nested_pct, 1).c_str(), FormatWithCI(flat_pct, 1).c_str(),
                nested_bytes.mean(), flat_bytes.mean());
  }
  std::printf(
      "\nLocalizing data near the triggering event (nested) both delivers more events and\n"
      "moves fewer bytes — 'localizing the data to the sensors is very important to\n"
      "parsimonious use of bandwidth' (§6.2).\n");
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
