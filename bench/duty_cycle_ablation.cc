// Duty-cycled MAC ablation — closing §6.1's loop.
//
// The paper could only *model* energy: "we cannot measure energy per event
// ... we can estimate the effectiveness of reducing traffic for MACs with
// different duty cycles", and §7 notes "a freely available, energy aware MAC
// protocol remains needed". This build has one (network-synchronized duty
// cycling in the CSMA MAC), so the model's prediction can be checked against
// *measured* listen/receive/send times on the Figure-8 workload.
//
// Expected shape (matching the §6.1 model): energy per event falls steeply
// as the duty cycle drops (listening dominates), delivery stays usable while
// the awake windows still fit the offered load, and latency grows by the
// sleep-deferral per hop.

#include <cstdio>

#include "bench/bench_flags.h"
#include "src/radio/energy.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"

namespace diffusion {
namespace {

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 15));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 8000));
  // Flight recorder: trace the first (always-on) run only.
  const std::string trace_out = bench::StringFlag(argc, argv, "trace-out");

  if (!trace_out.empty()) {
    std::printf("writing JSONL trace of the first duty-1.0 run to %s\n", trace_out.c_str());
  }
  std::printf("=== Duty-cycled MAC on the Figure-8 workload (4 sources, suppression on,\n");
  std::printf("    %d runs x %d min; energy = measured times at power 1:2:2) ===\n\n", runs,
              minutes);
  std::printf("%-12s  %-18s  %-16s  %-12s  %-14s\n", "duty cycle", "energy/event",
              "delivery %", "latency", "model listen%");

  double baseline_energy = 0.0;
  for (double duty : {1.0, 0.5, 0.22, 0.10}) {
    RunningStat energy;
    RunningStat delivery;
    RunningStat latency;
    for (int run = 0; run < runs; ++run) {
      Fig8Params params;
      params.sources = 4;
      params.duty_cycle = duty;
      params.duration = static_cast<SimDuration>(minutes) * kMinute;
      params.seed = base_seed + static_cast<uint64_t>(run);
      params.trace_out = (duty == 1.0 && run == 0) ? trace_out : "";
      const Fig8Result result = RunFig8(params);
      energy.Add(result.energy_per_event);
      delivery.Add(result.delivery_rate * 100.0);
      latency.Add(result.mean_latency_s);
    }
    if (baseline_energy == 0.0) {
      baseline_energy = energy.mean();
    }
    std::printf("%-12.2f  %-18s  %-16s  %9.2f s  %12.1f%%\n", duty,
                FormatWithCI(energy, 1).c_str(), FormatWithCI(delivery, 1).c_str(),
                latency.mean(),
                ListenEnergyFraction(duty, EnergyRatios{}, PaperTimeShares()) * 100.0);
  }
  std::printf(
      "\n§6.1's model said always-on radios waste most energy listening; the measured\n"
      "sweep confirms it: energy/event collapses with the duty cycle while the protocol\n"
      "keeps functioning, trading latency for lifetime.\n");
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
