// Fault-recovery benchmark: proves diffusion's local repair (§3.1, §7).
//
// "When a reinforced path fails, it is locally repaired": there is no repair
// protocol to trigger — the next exploratory flood and interest refresh
// re-excite whatever paths survive, and reinforcement moves delivery onto
// them. This bench injects deterministic faults (src/fault) into the Figure 7
// surveillance workload and reports time-to-repair, deliveries lost during
// the outage, and the reinforcement churn repair cost.
//
// Emits BENCH_fault.json ("diffusion-bench-v1" schema). The output contains
// no wall-clock values: the same seed and plan produce a byte-identical file
// on every run/machine. Flags:
//   --scenario=NAME   crash | degrade | partition | all (default all)
//   --seed=N          simulation seed (default 1)
//   --sources=N       1..4 active Figure 7 sources (default 1)
//   --plan=PATH       diffusion-fault-plan-v1 JSON overriding the built-in
//                     plan (single-scenario runs only)
//   --out=PATH        where to write the JSON (default BENCH_fault.json)
//   --check=PATH      validate an existing file against the schema; no run
//   --print-plan      dump the built-in plan JSON for --scenario and exit
//   --trace-out=PATH  JSONL flight-recorder trace of the run
//   --require-repair  exit 1 unless every scenario repaired within its bound
//                     (2x the interest refresh period) — the CI gate

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_json.h"
#include "bench/replicate.h"
#include "src/fault/scenarios.h"

namespace diffusion {
namespace {

void AppendScenarioResults(const std::string& prefix, const FaultScenarioResult& result,
                           std::vector<bench::BenchResult>* out) {
  out->push_back({prefix + "_time_to_repair", "s", result.time_to_repair_s});
  out->push_back({prefix + "_repair_bound", "s", result.repair_bound_s});
  out->push_back({prefix + "_delivery_pre", "%", result.delivery_pre * 100.0});
  out->push_back({prefix + "_delivery_during", "%", result.delivery_during * 100.0});
  out->push_back({prefix + "_delivery_post", "%", result.delivery_post * 100.0});
  out->push_back({prefix + "_events_lost_during_outage", "events",
                  static_cast<double>(result.events_lost_during_outage)});
  out->push_back({prefix + "_reinforcements_after_fault", "msgs",
                  static_cast<double>(result.reinforcements_after_fault)});
  out->push_back({prefix + "_negative_reinforcements_after_fault", "msgs",
                  static_cast<double>(result.negative_reinforcements_after_fault)});
  out->push_back({prefix + "_stale_gradients_at_sample", "gradients",
                  static_cast<double>(result.stale_gradients_at_sample)});
  if (result.faulted_node != kBroadcastId) {
    out->push_back({prefix + "_faulted_node", "id", static_cast<double>(result.faulted_node)});
  }
}

int Main(int argc, char** argv) {
  const std::string check = bench::StringFlag(argc, argv, "check");
  if (!check.empty()) {
    std::string error;
    if (!bench::ValidateBenchJson(check, &error)) {
      std::fprintf(stderr, "FAIL: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s: valid %s file\n", check.c_str(), bench::kBenchJsonSchema);
    return 0;
  }

  const std::string scenario_flag = bench::StringFlag(argc, argv, "scenario", "all");
  const uint64_t seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 1));
  const int sources = static_cast<int>(bench::IntFlag(argc, argv, "sources", 1));
  const std::string plan_path = bench::StringFlag(argc, argv, "plan");
  const std::string out = bench::StringFlag(argc, argv, "out", "BENCH_fault.json");
  const std::string trace_out = bench::StringFlag(argc, argv, "trace-out");
  const bool require_repair = bench::BoolFlag(argc, argv, "require-repair");
  const bool print_plan = bench::BoolFlag(argc, argv, "print-plan");
  const unsigned jobs = bench::JobsFlag(argc, argv);

  std::vector<FaultScenario> scenarios;
  if (scenario_flag == "all") {
    scenarios = {FaultScenario::kCrash, FaultScenario::kDegrade, FaultScenario::kPartition};
  } else {
    FaultScenario scenario;
    if (!FaultScenarioFromName(scenario_flag, &scenario)) {
      std::fprintf(stderr, "unknown --scenario=%s (crash|degrade|partition|all)\n",
                   scenario_flag.c_str());
      return 1;
    }
    scenarios = {scenario};
  }

  std::string plan_json;
  if (!plan_path.empty()) {
    if (scenarios.size() != 1) {
      std::fprintf(stderr, "--plan requires a single --scenario (it labels the run)\n");
      return 1;
    }
    std::ifstream in(plan_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", plan_path.c_str());
      return 1;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    plan_json = contents.str();
  }

  std::vector<bench::BenchResult> results;
  bool all_repaired_in_bound = true;

  if (print_plan) {
    for (FaultScenario scenario : scenarios) {
      FaultScenarioParams params;
      params.scenario = scenario;
      params.seed = seed;
      params.sources = sources;
      params.plan_json = plan_json;
      std::printf("%s", FaultPlanToJson(BuiltinScenarioPlan(params)).c_str());
    }
    return 0;
  }

  std::printf("=== Fault recovery (seed %llu, %d source%s, %u jobs) ===\n\n",
              static_cast<unsigned long long>(seed), sources, sources == 1 ? "" : "s", jobs);

  // Scenarios are independent simulations; fan them out --jobs at a time.
  // Results are consumed in scenario order below, so BENCH_fault.json stays
  // byte-identical per (seed, plan) at every --jobs. Only the first scenario
  // traces (one recorder per file).
  const std::vector<FaultScenarioResult> scenario_results =
      bench::RunReplicates<FaultScenarioResult>(
          jobs, scenarios.size(), trace_out, nullptr,
          [&scenarios, seed, sources, &plan_json](size_t i, TraceSink* sink) {
            FaultScenarioParams params;
            params.scenario = scenarios[i];
            params.seed = seed;
            params.sources = sources;
            params.plan_json = plan_json;
            params.trace_sink = sink;
            return RunFaultScenario(params);
          });

  for (size_t i = 0; i < scenarios.size(); ++i) {
    const char* name = FaultScenarioName(scenarios[i]);
    const FaultScenarioResult& result = scenario_results[i];
    AppendScenarioResults(name, result, &results);

    const bool repaired = result.time_to_repair_s >= 0.0;
    const bool in_bound = repaired && result.time_to_repair_s <= result.repair_bound_s;
    all_repaired_in_bound = all_repaired_in_bound && in_bound;
    std::printf("%-10s  repair %7.1f s (bound %5.1f s)  delivery %5.1f%% -> %5.1f%% -> %5.1f%%"
                "  lost %llu  churn +%llu/-%llu%s\n",
                name, result.time_to_repair_s, result.repair_bound_s,
                result.delivery_pre * 100.0, result.delivery_during * 100.0,
                result.delivery_post * 100.0,
                static_cast<unsigned long long>(result.events_lost_during_outage),
                static_cast<unsigned long long>(result.reinforcements_after_fault),
                static_cast<unsigned long long>(result.negative_reinforcements_after_fault),
                in_bound ? "" : "  [MISSED BOUND]");
  }

  std::printf("\nShape to check: every scenario resumes delivery within 2x the interest\n");
  std::printf("refresh period — repair rides the refresh/exploratory cadence the protocol\n");
  std::printf("already pays for, with no dedicated recovery machinery.\n");

  if (!bench::WriteBenchJson(out, "fault_recovery", results)) {
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  if (require_repair && !all_repaired_in_bound) {
    std::fprintf(stderr, "FAIL: a scenario did not repair within its bound\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
