// Aggregation-strategy ablation — the §6.1 latency discussion.
//
// "A potential disadvantage of data aggregation is increased latency ... The
// algorithm used in these experiments does not affect latency at all, since
// we forward unique events immediately upon reception and then suppress any
// additional duplicates ... Other aggregation algorithms, such as those that
// delay transmitting a sensor reading with the hope of aggregating readings
// from other sensors, can add some latency."
//
// Compares three in-network strategies on the Figure-8 workload (4 sources):
//   none         — every copy travels to the sink
//   suppression  — §6.1's filter: first copy forwarded immediately
//   counting     — §3.3's merge-and-annotate filter with a hold window
//
// Expected shape: suppression matches `none` latency while cutting traffic;
// counting cuts delivered duplicates further but pays its window in latency.

#include <cstdio>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/replicate.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"

namespace diffusion {
namespace {

struct Strategy {
  const char* label;
  AggregationStrategy strategy;
};

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 15));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 6000));
  const int window_ms = static_cast<int>(bench::IntFlag(argc, argv, "window-ms", 2000));
  const unsigned jobs = bench::JobsFlag(argc, argv);

  const Strategy strategies[] = {
      {"none", AggregationStrategy::kNone},
      {"suppression", AggregationStrategy::kSuppression},
      {"counting", AggregationStrategy::kCounting},
  };
  const size_t strategy_count = sizeof(strategies) / sizeof(strategies[0]);

  // One replicate per (strategy, run), fanned out --jobs at a time; the
  // aggregation below walks results in this order, so the table is
  // independent of --jobs.
  const std::vector<Fig8Result> results = bench::RunReplicates<Fig8Result>(
      jobs, strategy_count * static_cast<size_t>(runs), /*trace_out=*/"", nullptr,
      [&strategies, runs, minutes, window_ms, base_seed](size_t i, TraceSink* sink) {
        Fig8Params params;
        params.sources = 4;
        params.use_strategy = true;
        params.strategy = strategies[i / static_cast<size_t>(runs)].strategy;
        params.counting_window = static_cast<SimDuration>(window_ms) * kMillisecond;
        params.duration = static_cast<SimDuration>(minutes) * kMinute;
        params.seed = base_seed + i % static_cast<size_t>(runs);
        params.trace_sink = sink;
        return RunFig8(params);
      });

  std::printf("=== Aggregation strategies on the Figure-8 workload (4 sources,\n");
  std::printf("    %d runs x %d min, counting window %d ms, %u jobs) ===\n\n", runs, minutes,
              window_ms, jobs);
  std::printf("%-13s  %-18s  %-16s  %-18s\n", "strategy", "bytes/event", "delivery %",
              "first-copy latency");

  for (size_t s = 0; s < strategy_count; ++s) {
    RunningStat bytes;
    RunningStat delivery;
    RunningStat latency;
    for (int run = 0; run < runs; ++run) {
      const Fig8Result& result = results[s * static_cast<size_t>(runs) + static_cast<size_t>(run)];
      bytes.Add(result.bytes_per_event);
      delivery.Add(result.delivery_rate * 100.0);
      latency.Add(result.mean_latency_s);
    }
    std::printf("%-13s  %-18s  %-16s  %15.2f s\n", strategies[s].label,
                FormatWithCI(bytes, 0).c_str(), FormatWithCI(delivery, 1).c_str(),
                latency.mean());
  }
  std::printf(
      "\nPaper checkpoint: immediate suppression 'does not affect latency at all';\n"
      "delay-based merging 'can add some latency' (≈ its hold window per hop).\n");
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
