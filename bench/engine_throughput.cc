// Whole-engine events/sec benchmark — the proof for the memory-layout
// overhaul (pairing-heap scheduler, pooled messages, zero-copy wire path,
// CoW attribute sets, SoA gradient tables).
//
// The workload is the paper's Figure-7 testbed running the Figure-8
// aggregation experiment: 14 nodes, 4 sources, duplicate-suppression
// filters everywhere, the congested CSMA MAC. Both engines live in one
// binary (Fig8Params::compat_engine flips the scheduler implementation and
// the wire path), so one run measures the overhaul against the pre-overhaul
// baseline on identical inputs.
//
// Determinism contract:
//  * Both engines are asserted byte-equivalent first: a short traced run in
//    each mode must produce the identical event trace and metrics. Only
//    then is anything timed.
//  * The deterministic section (events_executed, delivered events, bytes,
//    the trace fingerprint) is byte-identical for any --jobs; scripts/
//    check.sh cmp-gates --deterministic-only output across --jobs values.
//  * The timing section (events_per_sec*, engine_speedup) varies run to run
//    like every wall-clock metric (cf. BENCH_matching.json); timing runs
//    are always serial regardless of --jobs.
//
// Emits BENCH_engine.json ("diffusion-bench-v1" schema). Flags:
//   --out=PATH            where to write the JSON (default BENCH_engine.json)
//   --check=PATH          validate an existing file against the schema; no run
//   --runs=N              replicates per section (default 3)
//   --minutes=M           simulated minutes per timing replicate (default 10)
//   --jobs=N              worker threads for the deterministic section
//   --deterministic-only  emit only the deterministic metrics (the --jobs
//                         cmp gate) and skip the timing section
//   --require-speedup=X   exit non-zero unless engine_speedup reaches X;
//                         with --check, re-verifies the recorded value
//   --steps               instead of the two-mode run, measure the overhaul
//                         one subsystem at a time: start from the full
//                         compat engine and cumulatively enable the pairing
//                         heap, the pooled zero-copy wire path, then the
//                         channel memory layout (the docs/PERFORMANCE.md
//                         step table). No JSON is written.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_json.h"
#include "bench/replicate.h"
#include "src/testbed/experiments.h"

namespace diffusion {
namespace {

// Folds a buffered trace into one number (the shared streaming fold from
// src/trace/trace.h, same value FingerprintTraceSink would produce).
uint64_t TraceFingerprint(const std::vector<TraceEvent>& events) {
  uint64_t hash = kTraceFingerprintSeed;
  for (const TraceEvent& event : events) {
    hash = FoldTraceEvent(hash, event);
  }
  return TruncateTraceFingerprint(hash);
}

Fig8Params BaseParams(uint64_t seed, SimDuration duration, bool compat) {
  Fig8Params params;
  params.sources = 4;
  params.suppression = true;
  params.duration = duration;
  params.warmup = 60 * kSecond;
  params.seed = seed;
  params.compat_engine = compat;
  return params;
}

// One cumulative configuration of the step table: which subsystems still run
// in compat (pre-overhaul) form.
struct Step {
  const char* label;
  bool compat_scheduler;
  bool compat_wire;
  bool compat_channel;
};

bool SameResult(const Fig8Result& a, const Fig8Result& b) {
  return a.distinct_events == b.distinct_events && a.diffusion_bytes == b.diffusion_bytes &&
         a.suppressed == b.suppressed && a.events_executed == b.events_executed &&
         a.bytes_per_event == b.bytes_per_event && a.delivery_rate == b.delivery_rate &&
         a.mean_latency_s == b.mean_latency_s && a.energy_per_event == b.energy_per_event;
}

// Reads one recorded metric back out of a bench JSON file this binary wrote
// (fixed two-space formatting, so a scan is sufficient).
bool ReadBenchValue(const std::string& path, const std::string& name, double* value) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  std::string text;
  char buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  const std::string needle = "\"name\": \"" + name + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const std::string value_key = "\"value\": ";
  const size_t value_at = text.find(value_key, at);
  if (value_at == std::string::npos) {
    return false;
  }
  *value = std::strtod(text.c_str() + value_at + value_key.size(), nullptr);
  return true;
}

int Main(int argc, char** argv) {
  const double require = std::strtod(
      bench::StringFlag(argc, argv, "require-speedup", "0").c_str(), nullptr);
  const std::string check = bench::StringFlag(argc, argv, "check");
  if (!check.empty()) {
    std::string error;
    if (!bench::ValidateBenchJson(check, &error)) {
      std::fprintf(stderr, "FAIL: %s\n", error.c_str());
      return 1;
    }
    if (require > 0.0) {
      double recorded = 0.0;
      if (!ReadBenchValue(check, "engine_speedup", &recorded)) {
        std::fprintf(stderr, "FAIL: %s has no engine_speedup metric\n", check.c_str());
        return 1;
      }
      if (recorded < require) {
        std::fprintf(stderr, "FAIL: recorded engine_speedup %.2fx below --require-speedup=%.1f\n",
                     recorded, require);
        return 1;
      }
    }
    std::printf("%s: valid %s file\n", check.c_str(), bench::kBenchJsonSchema);
    return 0;
  }

  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 20));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 3000));
  const unsigned jobs = bench::JobsFlag(argc, argv);
  const bool deterministic_only = bench::BoolFlag(argc, argv, "deterministic-only");
  const bool steps = bench::BoolFlag(argc, argv, "steps");
  const std::string out = bench::StringFlag(argc, argv, "out", "BENCH_engine.json");

  const SimDuration step_duration = minutes * kMinute;
  auto time_config = [&](const Step& step) {
    double seconds = 0.0;
    uint64_t events = 0;
    for (int i = 0; i < runs; ++i) {
      Fig8Params params =
          BaseParams(base_seed + static_cast<uint64_t>(i), step_duration, /*compat=*/false);
      params.compat_scheduler = step.compat_scheduler;
      params.compat_wire = step.compat_wire;
      params.compat_channel = step.compat_channel;
      const auto start = std::chrono::steady_clock::now();
      const Fig8Result result = RunFig8(params);
      const auto stop = std::chrono::steady_clock::now();
      seconds += std::chrono::duration_cast<std::chrono::duration<double>>(stop - start).count();
      events += result.events_executed;
    }
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  };

  if (steps) {
    // Cumulative: each row keeps every overhaul subsystem enabled so far.
    // CoW attribute sets, arena pooling, and the SoA gradient tables are not
    // gated and are active in every row (including the baseline).
    const Step kSteps[] = {
        {"compat engine (baseline)", true, true, true},
        {"+ pairing-heap scheduler", false, true, true},
        {"+ pooled zero-copy wire path", false, false, true},
        {"+ channel memory layout", false, false, false},
    };
    std::printf("=== Overhaul steps: Figure-7 testbed, %d x %d min, 4 sources ===\n\n", runs,
                minutes);
    double baseline_eps = 0.0;
    double previous_eps = 0.0;
    for (const Step& step : kSteps) {
      const double eps = time_config(step);
      if (baseline_eps == 0.0) {
        std::printf("%-30s  %14.0f   events/sec\n", step.label, eps);
        baseline_eps = eps;
      } else {
        std::printf("%-30s  %14.0f   events/sec  (%+5.1f%%, cumulative %.2fx)\n", step.label,
                    eps, previous_eps > 0.0 ? 100.0 * (eps - previous_eps) / previous_eps : 0.0,
                    baseline_eps > 0.0 ? eps / baseline_eps : 0.0);
      }
      previous_eps = eps;
    }
    return 0;
  }

  // ---- engine equivalence (traced, short) --------------------------------
  // One short replicate per mode, fully traced; the engines must agree on
  // every trace event and every metric before anything is timed.
  MemoryTraceSink overhauled_trace;
  MemoryTraceSink compat_trace;
  Fig8Params probe = BaseParams(base_seed, 2 * kMinute, /*compat=*/false);
  probe.trace_sink = &overhauled_trace;
  const Fig8Result probe_overhauled = RunFig8(probe);
  probe.compat_engine = true;
  probe.trace_sink = &compat_trace;
  const Fig8Result probe_compat = RunFig8(probe);
  if (overhauled_trace.events().size() != compat_trace.events().size()) {
    std::fprintf(stderr, "FAIL: engines disagree on trace length (%zu vs %zu)\n",
                 overhauled_trace.events().size(), compat_trace.events().size());
    return 1;
  }
  for (size_t i = 0; i < overhauled_trace.events().size(); ++i) {
    if (!(overhauled_trace.events()[i] == compat_trace.events()[i])) {
      std::fprintf(stderr, "FAIL: engines disagree at trace event %zu\n", i);
      return 1;
    }
  }
  if (!SameResult(probe_overhauled, probe_compat)) {
    std::fprintf(stderr, "FAIL: engines disagree on Fig8 metrics\n");
    return 1;
  }
  const uint64_t fingerprint = TraceFingerprint(overhauled_trace.events());

  // ---- deterministic section (parallel over --jobs) ----------------------
  const SimDuration duration = minutes * kMinute;
  const std::vector<Fig8Result> det_results = bench::RunReplicates<Fig8Result>(
      jobs, static_cast<size_t>(runs), /*trace_out=*/"", nullptr,
      [&](size_t i, TraceSink* sink) {
        Fig8Params params = BaseParams(base_seed + i, duration, /*compat=*/false);
        params.trace_sink = sink;
        return RunFig8(params);
      });
  uint64_t total_events = 0;
  uint64_t total_delivered = 0;
  uint64_t total_bytes = 0;
  for (const Fig8Result& result : det_results) {
    total_events += result.events_executed;
    total_delivered += result.distinct_events;
    total_bytes += result.diffusion_bytes;
  }

  std::printf("=== Engine throughput: Figure-7 testbed, %d x %d min, 4 sources ===\n\n", runs,
              minutes);
  std::printf("%-28s  %16llu\n", "events executed",
              static_cast<unsigned long long>(total_events));
  std::printf("%-28s  %16llu\n", "events delivered",
              static_cast<unsigned long long>(total_delivered));
  std::printf("%-28s  %16llu\n", "diffusion bytes",
              static_cast<unsigned long long>(total_bytes));
  std::printf("%-28s  %16llu\n", "trace fingerprint",
              static_cast<unsigned long long>(fingerprint));

  std::vector<bench::BenchResult> results = {
      {"runs", "count", static_cast<double>(runs)},
      {"sim_minutes_per_run", "min", static_cast<double>(minutes)},
      {"events_executed", "count", static_cast<double>(total_events)},
      {"events_delivered", "count", static_cast<double>(total_delivered)},
      {"diffusion_bytes", "bytes", static_cast<double>(total_bytes)},
      {"trace_fingerprint", "hash53", static_cast<double>(fingerprint)},
  };

  double speedup = 0.0;
  if (!deterministic_only) {
    // ---- timing section (always serial) ----------------------------------
    // Same replicates, wall-clocked one at a time in each mode. The compat
    // engine runs the identical simulation (asserted above), so dividing the
    // same event count by each mode's wall time is a like-for-like rate.
    const double baseline_eps = time_config(Step{"", true, true, true});
    const double overhauled_eps = time_config(Step{"", false, false, false});
    speedup = baseline_eps > 0.0 ? overhauled_eps / baseline_eps : 0.0;

    std::printf("\n%-28s  %16.0f   events/sec\n", "compat engine (baseline)", baseline_eps);
    std::printf("%-28s  %16.0f   events/sec  (%.2fx)\n", "overhauled engine", overhauled_eps,
                speedup);

    results.push_back({"events_per_sec_baseline", "events/s", baseline_eps});
    results.push_back({"events_per_sec", "events/s", overhauled_eps});
    results.push_back({"engine_speedup", "x", speedup});
  }

  if (!out.empty()) {
    if (!bench::WriteBenchJson(out, "engine_throughput", results)) {
      return 1;
    }
    std::string error;
    if (!bench::ValidateBenchJson(out, &error)) {
      std::fprintf(stderr, "FAIL: emitted file does not validate: %s\n", error.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", out.c_str());
  }

  if (!deterministic_only && require > 0.0 && speedup < require) {
    std::fprintf(stderr, "FAIL: engine_speedup %.2fx below --require-speedup=%.1f\n", speedup,
                 require);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
