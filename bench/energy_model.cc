// §6.1's radio energy model: P_d = d·p_l·t_l + p_r·t_r + p_s·t_s.
//
// Two parts:
//  1. The analytic duty-cycle table the paper walks through (listen-dominated
//     at d=1; half the energy at d≈22%; send/receive-dominated by d≈10%),
//     using the testbed's aggregate listen:receive:send time shares (40:3:1)
//     and the assumed power ratios 1:2:2.
//  2. The same model evaluated on *measured* time shares from a simulated
//     Figure-8 run (4 sources, suppression on), closing the loop between the
//     traffic experiment and the energy estimate.

#include <cstdio>
#include <map>
#include <memory>

#include "src/apps/surveillance.h"
#include "src/core/node.h"
#include "src/filters/duplicate_suppression_filter.h"
#include "src/radio/energy.h"
#include "src/testbed/topology.h"

namespace diffusion {
namespace {

void PrintTable(const TimeShares& shares, const char* label) {
  const EnergyRatios ratios;
  std::printf("%s (listen:receive:send time = %.3f:%.3f:%.3f, power = 1:2:2)\n", label,
              shares.listen, shares.receive, shares.send);
  std::printf("%-12s  %-14s  %-16s\n", "duty cycle", "total energy", "listen fraction");
  for (double duty : {1.0, 0.5, 0.22, 0.15, 0.10, 0.05}) {
    std::printf("%-12.2f  %-14.2f  %14.1f%%\n", duty, TotalEnergy(duty, ratios, shares),
                ListenEnergyFraction(duty, ratios, shares) * 100.0);
  }
  std::printf("\n");
}

int Main() {
  std::printf("=== §6.1 energy model: P_d = d·p_l·t_l + p_r·t_r + p_s·t_s ===\n\n");
  PrintTable(PaperTimeShares(), "Paper's aggregate time shares");

  std::printf("Paper checkpoints: duty 1.0 dominated by listening; ~50%% at duty 0.22;\n");
  std::printf("send/receive dominate below ~0.10. (Today's radios run duty 1.0; TDMA\n");
  std::printf("radios like WINSng reach 10-15%% — hence energy-conserving MACs matter.)\n\n");

  // Measured shares from a short simulated aggregation run.
  Simulator sim(99);
  const TestbedLayout layout = IsiTestbedLayout();
  Channel channel(&sim, MakePropagation(layout, 0.98));
  DiffusionConfig dconfig;
  dconfig.forward_delay_jitter = 300 * kMillisecond;
  const RadioConfig rconfig = TestbedRadioConfig();
  std::map<NodeId, std::unique_ptr<DiffusionNode>> nodes;
  for (NodeId id : layout.node_ids) {
    nodes[id] = std::make_unique<DiffusionNode>(&sim, &channel, id, NodeOptions{.diffusion = dconfig, .radio = rconfig});
  }
  SurveillanceConfig sconfig;
  std::vector<std::unique_ptr<DuplicateSuppressionFilter>> filters;
  for (auto& [id, node] : nodes) {
    filters.push_back(std::make_unique<DuplicateSuppressionFilter>(
        node.get(), SurveillanceDataFilterAttrs(sconfig), 10));
  }
  SurveillanceSink sink(nodes.at(kIsiSinkNode).get(), sconfig);
  std::vector<std::unique_ptr<SurveillanceSource>> sources;
  for (NodeId id : kIsiSourceNodes) {
    sources.push_back(
        std::make_unique<SurveillanceSource>(nodes.at(id).get(), sconfig, static_cast<int32_t>(id)));
  }
  sink.Start();
  for (auto& source : sources) {
    source->Start();
  }
  const SimDuration run_time = 10 * kMinute;
  sim.RunUntil(run_time);

  TimeShares measured{0, 0, 0};
  for (auto& [id, node] : nodes) {
    const TimeShares shares =
        SharesFromStats(node->radio().stats(), node->radio().time_sending(), run_time);
    measured.listen += shares.listen / static_cast<double>(nodes.size());
    measured.receive += shares.receive / static_cast<double>(nodes.size());
    measured.send += shares.send / static_cast<double>(nodes.size());
  }
  PrintTable(measured, "Measured shares (simulated 10-min, 4-source aggregation run)");
  std::printf("Note: measured listen share exceeds the paper's congested aggregate because\n");
  std::printf("this averages all 14 nodes, including lightly loaded ones.\n");
  return 0;
}

}  // namespace
}  // namespace diffusion

int main() { return diffusion::Main(); }
