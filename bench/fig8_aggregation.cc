// Figure 8 — "Bytes sent from all diffusion modules, normalized to the
// number of distinct events, for varying numbers of sources."
//
// Reproduces §6.1's aggregation experiment: 14-node ISI testbed topology,
// sink at node 28, sources at nodes 25/16/22/13, one 112-byte event per 6 s
// with synchronized sequence numbers, duplicate-suppression filters on every
// node in the "with suppression" rows. Each point is the mean of --runs
// repetitions of --minutes-long measurement windows, with 95% CIs — the
// paper used five 30-minute experiments.
//
// Expected shape (paper): with suppression the traffic is roughly constant
// in the source count; without it traffic climbs steeply; suppression saves
// up to ~42% at four sources. The analytic model brackets the points at
// 990 B/event (ideal aggregation) to 3289 B/event (4 sources, none).

#include <cstdio>

#include "bench/bench_flags.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"
#include "src/testbed/traffic_model.h"

namespace diffusion {
namespace {

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 5));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 30));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 1000));
  // Flight recorder: trace the first (1-source, with-suppression) run only —
  // one full trace is plenty and tracing every sweep point would dwarf the
  // results in I/O.
  const std::string trace_out = bench::StringFlag(argc, argv, "trace-out");

  RunningStat bytes_with[5];
  RunningStat bytes_without[5];
  RunningStat delivery_with[5];
  RunningStat delivery_without[5];

  for (int sources = 1; sources <= 4; ++sources) {
    for (int run = 0; run < runs; ++run) {
      Fig8Params params;
      params.sources = sources;
      params.duration = static_cast<SimDuration>(minutes) * kMinute;
      params.seed = base_seed + static_cast<uint64_t>(run);

      params.suppression = true;
      params.trace_out = (sources == 1 && run == 0) ? trace_out : "";
      const Fig8Result with = RunFig8(params);
      params.trace_out.clear();
      bytes_with[sources].Add(with.bytes_per_event);
      delivery_with[sources].Add(with.delivery_rate * 100.0);

      params.suppression = false;
      const Fig8Result without = RunFig8(params);
      bytes_without[sources].Add(without.bytes_per_event);
      delivery_without[sources].Add(without.delivery_rate * 100.0);
    }
  }

  if (!trace_out.empty()) {
    std::printf("traced the 1-source with-suppression run to %s\n\n", trace_out.c_str());
  }
  std::printf("=== Figure 8: in-network aggregation on the 14-node testbed ===\n");
  std::printf("(%d runs x %d min per point; bytes sent by all diffusion modules per distinct\n",
              runs, minutes);
  std::printf(" event received at the sink; mean ± 95%% CI)\n\n");
  std::printf("%-8s  %-20s  %-20s  %-8s  %-12s  %-12s\n", "sources", "with suppression",
              "without suppression", "savings", "model(ideal)", "model(none)");
  const TrafficModelParams model;
  for (int sources = 1; sources <= 4; ++sources) {
    const double savings =
        bytes_without[sources].mean() > 0.0
            ? 1.0 - bytes_with[sources].mean() / bytes_without[sources].mean()
            : 0.0;
    std::printf("%-8d  %-20s  %-20s  %6.1f%%  %12.0f  %12.0f\n", sources,
                FormatWithCI(bytes_with[sources], 0).c_str(),
                FormatWithCI(bytes_without[sources], 0).c_str(), savings * 100.0,
                ModelBytesPerEvent(model, sources, AggregationModel::kIdeal),
                ModelBytesPerEvent(model, sources, AggregationModel::kNone));
  }

  std::printf("\nEvent delivery %% (the paper reports 55-80%% under its congested MAC):\n");
  std::printf("%-8s  %-20s  %-20s\n", "sources", "with suppression", "without");
  for (int sources = 1; sources <= 4; ++sources) {
    std::printf("%-8d  %-20s  %-20s\n", sources, FormatWithCI(delivery_with[sources], 1).c_str(),
                FormatWithCI(delivery_without[sources], 1).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
