// Figure 8 — "Bytes sent from all diffusion modules, normalized to the
// number of distinct events, for varying numbers of sources."
//
// Reproduces §6.1's aggregation experiment: 14-node ISI testbed topology,
// sink at node 28, sources at nodes 25/16/22/13, one 112-byte event per 6 s
// with synchronized sequence numbers, duplicate-suppression filters on every
// node in the "with suppression" rows. Each point is the mean of --runs
// repetitions of --minutes-long measurement windows, with 95% CIs — the
// paper used five 30-minute experiments.
//
// Replicates are independent (seed, params) simulations and run --jobs at a
// time (see bench/replicate.h); every output — the table, --bench-json and
// the merged --trace-out — is byte-identical regardless of --jobs.
//
// Expected shape (paper): with suppression the traffic is roughly constant
// in the source count; without it traffic climbs steeply; suppression saves
// up to ~42% at four sources. The analytic model brackets the points at
// 990 B/event (ideal aggregation) to 3289 B/event (4 sources, none).

#include <cstdio>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_json.h"
#include "bench/replicate.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"
#include "src/testbed/traffic_model.h"

namespace diffusion {
namespace {

// One replicate of the sweep: a (sources, run, suppression) cell.
struct Cell {
  int sources;
  int run;
  bool suppression;
};

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 5));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 30));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 1000));
  const unsigned jobs = bench::JobsFlag(argc, argv);
  // Flight recorder: trace the first (1-source, with-suppression) run only —
  // one full trace is plenty and tracing every sweep point would dwarf the
  // results in I/O.
  const std::string trace_out = bench::StringFlag(argc, argv, "trace-out");
  // Deterministic diffusion-bench-v1 export (no wall-clock values): the same
  // seeds produce a byte-identical file at every --jobs.
  const std::string bench_json_out = bench::StringFlag(argc, argv, "bench-json");

  // Flatten the sweep into the serial loop's execution order; aggregation
  // below consumes results in this (seed) order, never completion order.
  std::vector<Cell> cells;
  for (int sources = 1; sources <= 4; ++sources) {
    for (int run = 0; run < runs; ++run) {
      cells.push_back({sources, run, true});
      cells.push_back({sources, run, false});
    }
  }

  const std::vector<Fig8Result> results = bench::RunReplicates<Fig8Result>(
      jobs, cells.size(), trace_out,
      [&cells](size_t i) {
        return cells[i].sources == 1 && cells[i].run == 0 && cells[i].suppression;
      },
      [&cells, minutes, base_seed](size_t i, TraceSink* sink) {
        const Cell& cell = cells[i];
        Fig8Params params;
        params.sources = cell.sources;
        params.duration = static_cast<SimDuration>(minutes) * kMinute;
        params.seed = base_seed + static_cast<uint64_t>(cell.run);
        params.suppression = cell.suppression;
        params.trace_sink = sink;
        return RunFig8(params);
      });

  RunningStat bytes_with[5];
  RunningStat bytes_without[5];
  RunningStat delivery_with[5];
  RunningStat delivery_without[5];
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    if (cell.suppression) {
      bytes_with[cell.sources].Add(results[i].bytes_per_event);
      delivery_with[cell.sources].Add(results[i].delivery_rate * 100.0);
    } else {
      bytes_without[cell.sources].Add(results[i].bytes_per_event);
      delivery_without[cell.sources].Add(results[i].delivery_rate * 100.0);
    }
  }

  if (!trace_out.empty()) {
    std::printf("traced the 1-source with-suppression run to %s\n\n", trace_out.c_str());
  }
  std::printf("=== Figure 8: in-network aggregation on the 14-node testbed ===\n");
  std::printf("(%d runs x %d min per point, %u jobs; bytes sent by all diffusion modules per\n",
              runs, minutes, jobs);
  std::printf(" distinct event received at the sink; mean ± 95%% CI)\n\n");
  std::printf("%-8s  %-20s  %-20s  %-8s  %-12s  %-12s\n", "sources", "with suppression",
              "without suppression", "savings", "model(ideal)", "model(none)");
  const TrafficModelParams model;
  std::vector<bench::BenchResult> bench_results;
  for (int sources = 1; sources <= 4; ++sources) {
    const double savings =
        bytes_without[sources].mean() > 0.0
            ? 1.0 - bytes_with[sources].mean() / bytes_without[sources].mean()
            : 0.0;
    std::printf("%-8d  %-20s  %-20s  %6.1f%%  %12.0f  %12.0f\n", sources,
                FormatWithCI(bytes_with[sources], 0).c_str(),
                FormatWithCI(bytes_without[sources], 0).c_str(), savings * 100.0,
                ModelBytesPerEvent(model, sources, AggregationModel::kIdeal),
                ModelBytesPerEvent(model, sources, AggregationModel::kNone));
    const std::string point = std::to_string(sources) + "_sources";
    bench_results.push_back(
        {"bytes_per_event_with_suppression_" + point, "B/event", bytes_with[sources].mean()});
    bench_results.push_back({"bytes_per_event_with_suppression_" + point + "_ci95", "B/event",
                             bytes_with[sources].confidence95()});
    bench_results.push_back(
        {"bytes_per_event_without_suppression_" + point, "B/event", bytes_without[sources].mean()});
    bench_results.push_back({"bytes_per_event_without_suppression_" + point + "_ci95", "B/event",
                             bytes_without[sources].confidence95()});
    bench_results.push_back({"savings_" + point, "%", savings * 100.0});
    bench_results.push_back(
        {"delivery_with_suppression_" + point, "%", delivery_with[sources].mean()});
    bench_results.push_back(
        {"delivery_without_suppression_" + point, "%", delivery_without[sources].mean()});
  }

  std::printf("\nEvent delivery %% (the paper reports 55-80%% under its congested MAC):\n");
  std::printf("%-8s  %-20s  %-20s\n", "sources", "with suppression", "without");
  for (int sources = 1; sources <= 4; ++sources) {
    std::printf("%-8d  %-20s  %-20s\n", sources, FormatWithCI(delivery_with[sources], 1).c_str(),
                FormatWithCI(delivery_without[sources], 1).c_str());
  }
  if (!bench_json_out.empty()) {
    if (!bench::WriteBenchJson(bench_json_out, "fig8_aggregation", bench_results)) {
      return 1;
    }
    std::printf("\nwrote %s\n", bench_json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
