#include "bench/replicate.h"

namespace diffusion {
namespace bench {

std::vector<std::unique_ptr<MemoryTraceSink>> MakeTraceBuffers(
    size_t count, const std::string& trace_out, const std::function<bool(size_t)>& traced) {
  std::vector<std::unique_ptr<MemoryTraceSink>> buffers(count);
  if (trace_out.empty()) {
    return buffers;
  }
  for (size_t i = 0; i < count; ++i) {
    const bool wants = traced != nullptr ? traced(i) : i == 0;
    if (wants) {
      buffers[i] = std::make_unique<MemoryTraceSink>();
    }
  }
  return buffers;
}

}  // namespace bench
}  // namespace diffusion
