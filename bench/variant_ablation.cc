// Diffusion variant ablation — §7's open question about mapping diffusion's
// parameters/phases to different needs.
//
// Runs the Figure-8 workload under the paper's two-phase pull (exploratory
// floods + reinforcement) and under one-phase pull (data follows the reverse
// of the fastest interest flood; no exploratory phase at all), with
// suppression both on and off.
//
// Expected shape: one-phase pull removes the periodic exploratory floods and
// the reinforcement chatter, cutting bytes/event — most visibly without
// suppression (where each source's exploratory flood costs a full network
// sweep). Its trade-off is path agility: repairs ride the 60 s interest
// refresh instead of the exploratory cadence.

#include <cstdio>

#include "bench/bench_flags.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"

namespace diffusion {
namespace {

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 15));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 7000));

  std::printf("=== Two-phase vs one-phase pull on the Figure-8 workload (4 sources,\n");
  std::printf("    %d runs x %d min) ===\n\n", runs, minutes);
  std::printf("%-16s  %-13s  %-18s  %-16s  %-12s\n", "variant", "suppression", "bytes/event",
              "delivery %", "latency");

  for (DiffusionVariant variant :
       {DiffusionVariant::kTwoPhasePull, DiffusionVariant::kOnePhasePull}) {
    for (bool suppression : {true, false}) {
      RunningStat bytes;
      RunningStat delivery;
      RunningStat latency;
      for (int run = 0; run < runs; ++run) {
        Fig8Params params;
        params.sources = 4;
        params.variant = variant;
        params.suppression = suppression;
        params.duration = static_cast<SimDuration>(minutes) * kMinute;
        params.seed = base_seed + static_cast<uint64_t>(run);
        const Fig8Result result = RunFig8(params);
        bytes.Add(result.bytes_per_event);
        delivery.Add(result.delivery_rate * 100.0);
        latency.Add(result.mean_latency_s);
      }
      std::printf("%-16s  %-13s  %-18s  %-16s  %9.2f s\n",
                  variant == DiffusionVariant::kTwoPhasePull ? "two-phase pull"
                                                             : "one-phase pull",
                  suppression ? "on" : "off", FormatWithCI(bytes, 0).c_str(),
                  FormatWithCI(delivery, 1).c_str(), latency.mean());
    }
  }
  std::printf(
      "\nOne-phase pull drops the exploratory floods and reinforcement chatter that the\n"
      "two-phase protocol pays for path quality; at the testbed's 1:10 exploratory:data\n"
      "ratio that overhead is a large share of every byte sent.\n");
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
