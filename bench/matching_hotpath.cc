// Matching/dispatch hot-path benchmark — the proof for this PR's fast path.
//
// Two workloads, each measured with the pre-PR reference implementation and
// with the canonical fast path, over the same inputs:
//
//  * dispatch — a busy node's filter chain: 64 registered filters (most
//    watching interests, some watching typed data) against a mixed message
//    stream grown with the Figure-11 rules. The reference scans every filter
//    with the nested-loop OneWayMatchLinear; the fast path asks MatchIndex
//    for candidates and confirms with the merge-scan OneWayMatch. Winners
//    are asserted identical before anything is timed.
//
//  * exact — GradientTable::FindExact: recognizing a refreshed interest among
//    64 remembered ones. The reference runs the quadratic multiset compare
//    (ExactMatchLinear); the fast path's precomputed order-insensitive hash
//    rejects non-equal sets in O(1).
//
//  * inequality at scale — the standalone pub/sub configuration: a
//    million-entry MatchIndex keyed on a numeric attribute, where nearly every
//    filter is an inequality (narrow [c, c+w] ranges, selective GE tails, a
//    sprinkling of EQ and NE). The pre-PR index classified every inequality
//    formal into the any-scan group, so its candidate set was O(filters) per
//    message; that baseline count is computed arithmetically (replaying the
//    old classifier) rather than timed — scanning a million filters per
//    message is the thing this PR deletes. The interval/endpoint index is
//    then measured for real: candidate-set size, per-message dispatch time,
//    and batched dispatch time via ForEachCandidateBatch.
//
// Emits BENCH_matching.json ("diffusion-bench-v1" schema). Flags:
//   --out=PATH              where to write the JSON (default BENCH_matching.json)
//   --check=PATH            validate an existing file against the schema; no run
//   --reps=N                timing repetitions (default 40)
//   --filters=N             inequality-section index size (default 1000000)
//   --require-speedup=X     exit non-zero unless both EQ speedups reach X
//   --require-reduction=X   exit non-zero unless the inequality candidate-set
//                           reduction reaches X; with --check, re-verifies the
//                           ineq_candidate_reduction recorded in the file

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_json.h"
#include "src/apps/animal.h"
#include "src/core/match_index.h"
#include "src/naming/keys.h"
#include "src/naming/matching.h"
#include "src/util/rng.h"

namespace diffusion {
namespace {

volatile uint64_t g_sink = 0;  // defeats dead-code elimination of timed loops

void Shuffle(AttributeVector* attrs, Rng* rng) {
  for (size_t i = attrs->size(); i > 1; --i) {
    std::swap((*attrs)[i - 1],
              (*attrs)[static_cast<size_t>(rng->NextInt(0, static_cast<int64_t>(i) - 1))]);
  }
}

// A registered filter, in both representations.
struct Entry {
  uint32_t id = 0;
  int32_t priority = 0;
  AttributeVector linear_attrs;  // what the pre-PR chain stored
  AttributeSet attrs;            // what the indexed chain stores
};

// The chain of a node running the shipped filters: interest-side machinery
// (gradient scoping, caches, aggregation triggers — all matching on
// `class EQ interest`, most further constrained by task) plus a smaller set
// of typed data filters. Data is the high-rate traffic, so the index's job
// is to keep the interest-side majority out of the data fast path.
std::vector<Entry> MakeFilters() {
  std::vector<Entry> filters;
  uint32_t next_id = 1;
  for (int i = 0; i < 48; ++i) {
    Entry entry;
    entry.id = next_id++;
    entry.priority = 100 + i;
    entry.linear_attrs = {ClassEq(kClassInterest),
                          Attribute::String(kKeyTask, AttrOp::kEq, "task" + std::to_string(i % 12)),
                          Attribute::Float64(kKeyConfidence, AttrOp::kGt, 50.0)};
    entry.attrs = entry.linear_attrs;
    filters.push_back(std::move(entry));
  }
  for (int i = 0; i < 16; ++i) {
    Entry entry;
    entry.id = next_id++;
    entry.priority = 10 + i;
    entry.linear_attrs = {ClassEq(kClassData),
                          Attribute::String(kKeyType, AttrOp::kEq, "type" + std::to_string(i % 8))};
    entry.attrs = entry.linear_attrs;
    filters.push_back(std::move(entry));
  }
  return filters;
}

// A message, in both representations.
struct Msg {
  AttributeVector linear_attrs;
  AttributeSet attrs;
};

// Mixed traffic, data-heavy: Figure-11-grown data sets (6..30 attributes,
// shuffled like real decode order) with a typed actual, plus occasional
// interest refreshes. The 31:1 ratio is generous to the slow path — the
// paper's interests refresh every ~30 s while data flows at per-second
// rates, so real streams are far more data-skewed still.
std::vector<Msg> MakeMessages(Rng* rng) {
  std::vector<Msg> messages;
  for (int i = 0; i < 256; ++i) {
    AttributeVector attrs;
    if (i % 32 == 31) {
      attrs = AnimalInterestSetA();
      attrs.push_back(Attribute::String(kKeyTask, AttrOp::kIs, "task" + std::to_string(i % 12)));
    } else {
      attrs = GrowSetB(static_cast<size_t>(6 + 6 * (i % 5)), SetGrowth::kActualIs);
      attrs.push_back(Attribute::String(kKeyType, AttrOp::kIs, "type" + std::to_string(i % 11)));
    }
    Shuffle(&attrs, rng);
    Msg msg;
    msg.linear_attrs = attrs;
    msg.attrs = std::move(attrs);
    messages.push_back(std::move(msg));
  }
  return messages;
}

// Pre-PR DispatchToChain: test every filter, keep the highest priority
// (lowest id on ties).
uint32_t DispatchLinear(const std::vector<Entry>& filters, const Msg& msg) {
  uint32_t best_id = 0;
  int32_t best_priority = 0;
  bool found = false;
  for (const Entry& entry : filters) {
    if (found &&
        (entry.priority < best_priority ||
         (entry.priority == best_priority && entry.id >= best_id))) {
      continue;
    }
    if (OneWayMatchLinear(entry.linear_attrs, msg.linear_attrs)) {
      found = true;
      best_priority = entry.priority;
      best_id = entry.id;
    }
  }
  return best_id;
}

// This PR's DispatchToChain: candidates from the index, merge-scan confirm.
uint32_t DispatchIndexed(const MatchIndex& index, const Msg& msg) {
  uint32_t best_id = 0;
  int32_t best_priority = 0;
  bool found = false;
  index.ForEachCandidate(msg.attrs, [&](const MatchIndexEntry& entry) {
    if (found &&
        (entry.priority < best_priority ||
         (entry.priority == best_priority && entry.id >= best_id))) {
      return;
    }
    if (OneWayMatch(*entry.attrs, msg.attrs)) {
      found = true;
      best_priority = entry.priority;
      best_id = entry.id;
    }
  });
  return best_id;
}

// 64 remembered interests (distinct sources) and a probe stream with an 80%
// hit rate, probes shuffled so the linear compare cannot ride stored order.
struct ExactWorkload {
  std::vector<AttributeVector> linear_entries;
  std::vector<AttributeSet> entries;
  std::vector<Msg> probes;
};

ExactWorkload MakeExactWorkload(Rng* rng) {
  ExactWorkload workload;
  std::vector<AttributeVector> all;
  for (int i = 0; i < 80; ++i) {
    AttributeVector attrs = AnimalInterestSetA();
    attrs.push_back(Attribute::Int32(kKeySourceId, AttrOp::kIs, i));
    all.push_back(std::move(attrs));
  }
  for (int i = 0; i < 64; ++i) {
    workload.linear_entries.push_back(all[static_cast<size_t>(i)]);
    workload.entries.push_back(AttributeSet(all[static_cast<size_t>(i)]));
  }
  for (int i = 0; i < 256; ++i) {
    AttributeVector attrs = all[static_cast<size_t>(i % 80)];
    Shuffle(&attrs, rng);
    Msg probe;
    probe.linear_attrs = attrs;
    probe.attrs = std::move(attrs);
    workload.probes.push_back(std::move(probe));
  }
  return workload;
}

size_t FindExactLinear(const std::vector<AttributeVector>& entries, const Msg& probe) {
  for (size_t i = 0; i < entries.size(); ++i) {
    if (ExactMatchLinear(entries[i], probe.linear_attrs)) {
      return i;
    }
  }
  return entries.size();
}

size_t FindExactHashed(const std::vector<AttributeSet>& entries, const Msg& probe) {
  for (size_t i = 0; i < entries.size(); ++i) {
    if (ExactMatch(entries[i], probe.attrs)) {
      return i;
    }
  }
  return entries.size();
}

// ---- Inequality-at-scale workload ----------------------------------------

// One subscription of the standalone pub/sub corpus, classified the way the
// pre-PR index would have classified it (EQ on the discriminator → value
// bucket; anything else → any-scan).
struct IneqEntry {
  uint32_t id = 0;
  AttributeSet attrs;
  bool old_index_bucketed = false;  // EQ on the discriminator
  uint64_t old_bucket_bits = 0;     // NormalizedBits of the EQ value
};

// Corpus mix: 80% narrow ranges (a geofence / band subscription), 10%
// selective GE tails (threshold alarms), 8% EQ, 2% NE. Values live in
// [0, 1e6]; range widths in [10, 200], so any single reading matches a few
// dozen range subscriptions out of the whole million.
std::vector<IneqEntry> MakeIneqFilters(size_t count, Rng* rng) {
  std::vector<IneqEntry> filters;
  filters.reserve(count);
  auto uniform = [&](double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(rng->Next() >> 11) * 0x1.0p-53);
  };
  for (size_t i = 0; i < count; ++i) {
    IneqEntry entry;
    entry.id = static_cast<uint32_t>(i + 1);
    const int kind = static_cast<int>(rng->NextInt(0, 99));
    AttributeVector attrs;
    if (kind < 80) {
      const double lo = uniform(0.0, 1e6);
      const double hi = lo + uniform(10.0, 200.0);
      attrs.push_back(Attribute::Float64(kKeyConfidence, AttrOp::kGe, lo));
      attrs.push_back(Attribute::Float64(kKeyConfidence, AttrOp::kLe, hi));
    } else if (kind < 90) {
      attrs.push_back(Attribute::Float64(kKeyConfidence, AttrOp::kGe, uniform(9.9e5, 1e6)));
    } else if (kind < 98) {
      const double value = uniform(0.0, 1e6);
      attrs.push_back(Attribute::Float64(kKeyConfidence, AttrOp::kEq, value));
      entry.old_index_bucketed = true;
      entry.old_bucket_bits = MatchIndex::NormalizedBits(value);
    } else {
      attrs.push_back(Attribute::Float64(kKeyConfidence, AttrOp::kNe, uniform(0.0, 1e6)));
    }
    entry.attrs = std::move(attrs);
    filters.push_back(std::move(entry));
  }
  return filters;
}

// A burst of single-reading messages, one kKeyConfidence actual each.
std::vector<AttributeSet> MakeIneqMessages(size_t count, Rng* rng) {
  std::vector<AttributeSet> messages;
  messages.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const double value =
        1e6 * (static_cast<double>(rng->Next() >> 11) * 0x1.0p-53);
    messages.push_back(AttributeSet(
        {Attribute::Float64(kKeyConfidence, AttrOp::kIs, value)}));
  }
  return messages;
}

// Pulls the recorded value of one metric back out of a bench JSON file we
// wrote ourselves (fixed two-space formatting, so a scan is sufficient).
bool ReadBenchValue(const std::string& path, const std::string& name, double* value) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  std::string text;
  char buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  const std::string needle = "\"name\": \"" + name + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const std::string value_key = "\"value\": ";
  const size_t value_at = text.find(value_key, at);
  if (value_at == std::string::npos) {
    return false;
  }
  *value = std::strtod(text.c_str() + value_at + value_key.size(), nullptr);
  return true;
}

// Nanoseconds per call of `fn` over the whole message stream, best of `reps`
// (best-of tolerates scheduler noise better than the mean).
template <typename Fn>
double TimeNsPerOp(int reps, size_t ops_per_rep, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
        static_cast<double>(ops_per_rep);
    if (rep == 0 || ns < best) {
      best = ns;
    }
  }
  return best;
}

int Main(int argc, char** argv) {
  const double require_reduction = std::strtod(
      bench::StringFlag(argc, argv, "require-reduction", "0").c_str(), nullptr);
  const std::string check = bench::StringFlag(argc, argv, "check");
  if (!check.empty()) {
    std::string error;
    if (!bench::ValidateBenchJson(check, &error)) {
      std::fprintf(stderr, "FAIL: %s\n", error.c_str());
      return 1;
    }
    if (require_reduction > 0.0) {
      double recorded = 0.0;
      if (!ReadBenchValue(check, "ineq_candidate_reduction", &recorded)) {
        std::fprintf(stderr, "FAIL: %s has no ineq_candidate_reduction metric\n", check.c_str());
        return 1;
      }
      if (recorded < require_reduction) {
        std::fprintf(stderr,
                     "FAIL: recorded ineq_candidate_reduction %.1fx below "
                     "--require-reduction=%.1f\n",
                     recorded, require_reduction);
        return 1;
      }
    }
    std::printf("%s: valid %s file\n", check.c_str(), bench::kBenchJsonSchema);
    return 0;
  }

  const int reps = static_cast<int>(bench::IntFlag(argc, argv, "reps", 40));
  const size_t ineq_filters =
      static_cast<size_t>(bench::IntFlag(argc, argv, "filters", 1000000));
  const std::string out = bench::StringFlag(argc, argv, "out", "BENCH_matching.json");
  const double require = std::strtod(
      bench::StringFlag(argc, argv, "require-speedup", "0").c_str(), nullptr);

  Rng rng(1234);
  const std::vector<Entry> filters = MakeFilters();
  const std::vector<Msg> messages = MakeMessages(&rng);
  MatchIndex index(kKeyClass);
  for (const Entry& entry : filters) {
    index.Insert(entry.id, entry.priority, &entry.attrs);
  }

  // The fast path must pick exactly the filter the full-chain scan picks.
  for (const Msg& msg : messages) {
    const uint32_t linear = DispatchLinear(filters, msg);
    const uint32_t indexed = DispatchIndexed(index, msg);
    if (linear != indexed) {
      std::fprintf(stderr, "FAIL: dispatch winners differ (linear=%u indexed=%u)\n", linear,
                   indexed);
      return 1;
    }
  }

  const ExactWorkload exact = MakeExactWorkload(&rng);
  for (const Msg& probe : exact.probes) {
    const size_t linear = FindExactLinear(exact.linear_entries, probe);
    const size_t hashed = FindExactHashed(exact.entries, probe);
    if (linear != hashed) {
      std::fprintf(stderr, "FAIL: exact-match results differ (%zu vs %zu)\n", linear, hashed);
      return 1;
    }
  }

  const double dispatch_linear_ns = TimeNsPerOp(reps, messages.size(), [&] {
    uint64_t acc = 0;
    for (const Msg& msg : messages) {
      acc += DispatchLinear(filters, msg);
    }
    g_sink = acc;
  });
  const double dispatch_indexed_ns = TimeNsPerOp(reps, messages.size(), [&] {
    uint64_t acc = 0;
    for (const Msg& msg : messages) {
      acc += DispatchIndexed(index, msg);
    }
    g_sink = acc;
  });
  const double exact_linear_ns = TimeNsPerOp(reps, exact.probes.size(), [&] {
    uint64_t acc = 0;
    for (const Msg& probe : exact.probes) {
      acc += FindExactLinear(exact.linear_entries, probe);
    }
    g_sink = acc;
  });
  const double exact_hashed_ns = TimeNsPerOp(reps, exact.probes.size(), [&] {
    uint64_t acc = 0;
    for (const Msg& probe : exact.probes) {
      acc += FindExactHashed(exact.entries, probe);
    }
    g_sink = acc;
  });

  const double dispatch_speedup = dispatch_linear_ns / dispatch_indexed_ns;
  const double exact_speedup = exact_linear_ns / exact_hashed_ns;

  // ---- Inequality at scale -----------------------------------------------
  Rng ineq_rng(987654321);
  const std::vector<IneqEntry> ineq = MakeIneqFilters(ineq_filters, &ineq_rng);
  const std::vector<AttributeSet> ineq_messages = MakeIneqMessages(512, &ineq_rng);
  MatchIndex ineq_index(kKeyConfidence);
  std::unordered_map<uint64_t, uint64_t> old_eq_buckets;
  uint64_t old_any_count = 0;
  for (const IneqEntry& entry : ineq) {
    if (!ineq_index.Insert(entry.id, 0, &entry.attrs)) {
      std::fprintf(stderr, "FAIL: duplicate id in inequality corpus\n");
      return 1;
    }
    if (entry.old_index_bucketed) {
      ++old_eq_buckets[entry.old_bucket_bits];
    } else {
      ++old_any_count;
    }
  }

  // Soundness spot-check against a full scan (a handful of messages — the
  // randomized equivalence suite in tests/ is the exhaustive version).
  for (size_t m = 0; m < ineq_messages.size(); m += 128) {
    std::vector<uint32_t> candidates;
    ineq_index.ForEachCandidate(ineq_messages[m], [&](const MatchIndexEntry& entry) {
      if (OneWayMatch(*entry.attrs, ineq_messages[m])) {
        candidates.push_back(entry.id);
      }
    });
    std::sort(candidates.begin(), candidates.end());
    size_t expected = 0;
    for (const IneqEntry& entry : ineq) {
      if (OneWayMatch(entry.attrs, ineq_messages[m])) {
        ++expected;
        if (!std::binary_search(candidates.begin(), candidates.end(), entry.id)) {
          std::fprintf(stderr, "FAIL: index lost a matching entry (id=%u)\n", entry.id);
          return 1;
        }
      }
    }
    if (expected != candidates.size()) {
      std::fprintf(stderr, "FAIL: confirmed candidate count %zu != full-scan %zu\n",
                   candidates.size(), expected);
      return 1;
    }
  }

  // Candidate-set sizes. The pre-PR baseline is arithmetic: every
  // non-EQ-classified filter sat in the any-scan group, so each message
  // visited all of them plus its EQ bucket.
  uint64_t scan_candidates = 0;
  uint64_t indexed_candidates = 0;
  for (const AttributeSet& message : ineq_messages) {
    scan_candidates += old_any_count;
    for (const Attribute& attr : message.items()) {
      if (attr.key() == kKeyConfidence && attr.op() == AttrOp::kIs) {
        const auto it = old_eq_buckets.find(
            MatchIndex::NormalizedBits(*attr.AsDouble()));
        if (it != old_eq_buckets.end()) {
          scan_candidates += it->second;
        }
      }
    }
    ineq_index.ForEachCandidate(message, [&](const MatchIndexEntry&) {
      ++indexed_candidates;
    });
  }
  const double ineq_scan_avg =
      static_cast<double>(scan_candidates) / static_cast<double>(ineq_messages.size());
  const double ineq_indexed_avg =
      static_cast<double>(indexed_candidates) / static_cast<double>(ineq_messages.size());
  const double ineq_reduction = ineq_scan_avg / ineq_indexed_avg;

  // Dispatch timing over the index that exists; the O(filters) baseline is
  // deliberately not timed at this scale.
  const int ineq_reps = std::max(1, std::min(5, reps / 8));
  const double ineq_dispatch_ns = TimeNsPerOp(ineq_reps, ineq_messages.size(), [&] {
    uint64_t acc = 0;
    for (const AttributeSet& message : ineq_messages) {
      ineq_index.ForEachCandidate(message, [&](const MatchIndexEntry& entry) {
        if (OneWayMatch(*entry.attrs, message)) {
          acc += entry.id;
        }
      });
    }
    g_sink = acc;
  });
  std::vector<const AttributeSet*> ineq_ptrs;
  for (const AttributeSet& message : ineq_messages) {
    ineq_ptrs.push_back(&message);
  }
  const double ineq_batch_ns = TimeNsPerOp(ineq_reps, ineq_messages.size(), [&] {
    uint64_t acc = 0;
    ineq_index.ForEachCandidateBatch(
        ineq_ptrs.data(), ineq_ptrs.size(),
        [&](size_t i, const MatchIndexEntry& entry) {
          if (OneWayMatch(*entry.attrs, *ineq_ptrs[i])) {
            acc += entry.id;
          }
        });
    g_sink = acc;
  });

  std::printf("=== Matching hot path (64 filters, 256 messages, best of %d reps) ===\n\n", reps);
  std::printf("%-28s  %12s\n", "variant", "ns/message");
  std::printf("%-28s  %12.0f\n", "dispatch: full-chain linear", dispatch_linear_ns);
  std::printf("%-28s  %12.0f   (%.1fx)\n", "dispatch: index + merge", dispatch_indexed_ns,
              dispatch_speedup);
  std::printf("%-28s  %12.0f\n", "exact: multiset compare", exact_linear_ns);
  std::printf("%-28s  %12.0f   (%.1fx)\n", "exact: hash pre-check", exact_hashed_ns,
              exact_speedup);
  std::printf("\n=== Inequality at scale (%zu filters, %zu messages, best of %d reps) ===\n\n",
              ineq_filters, ineq_messages.size(), ineq_reps);
  std::printf("%-28s  %12.0f   candidates/message\n", "any-scan baseline", ineq_scan_avg);
  std::printf("%-28s  %12.0f   candidates/message  (%.1fx fewer)\n", "interval index",
              ineq_indexed_avg, ineq_reduction);
  std::printf("%-28s  %12.0f   ns/message\n", "dispatch: per message", ineq_dispatch_ns);
  std::printf("%-28s  %12.0f   ns/message\n", "dispatch: batched", ineq_batch_ns);

  if (!out.empty()) {
    const std::vector<bench::BenchResult> results = {
        {"dispatch_linear_full_chain", "ns/op", dispatch_linear_ns},
        {"dispatch_indexed_merge_scan", "ns/op", dispatch_indexed_ns},
        {"dispatch_speedup", "x", dispatch_speedup},
        {"exact_linear_multiset", "ns/op", exact_linear_ns},
        {"exact_hash_precheck", "ns/op", exact_hashed_ns},
        {"exact_speedup", "x", exact_speedup},
        {"ineq_filters", "count", static_cast<double>(ineq_filters)},
        {"ineq_candidates_scan", "candidates/msg", ineq_scan_avg},
        {"ineq_candidates_indexed", "candidates/msg", ineq_indexed_avg},
        {"ineq_candidate_reduction", "x", ineq_reduction},
        {"ineq_dispatch_indexed", "ns/op", ineq_dispatch_ns},
        {"ineq_dispatch_batched", "ns/op", ineq_batch_ns},
    };
    if (!bench::WriteBenchJson(out, "matching_hotpath", results)) {
      return 1;
    }
    std::string error;
    if (!bench::ValidateBenchJson(out, &error)) {
      std::fprintf(stderr, "FAIL: emitted file does not validate: %s\n", error.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", out.c_str());
  }

  if (require > 0.0 && (dispatch_speedup < require || exact_speedup < require)) {
    std::fprintf(stderr, "FAIL: speedup below --require-speedup=%.1f\n", require);
    return 1;
  }
  if (require_reduction > 0.0 && ineq_reduction < require_reduction) {
    std::fprintf(stderr, "FAIL: candidate reduction %.1fx below --require-reduction=%.1f\n",
                 ineq_reduction, require_reduction);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
