// Figure 11 (google-benchmark form): two-way matching microbenchmark over
// the Figure-10 attribute sets, swept from 6 to 30 attributes in Set B for
// all four series. The four paper series run the *Linear reference (the
// paper's nested-scan algorithm); the _Canonical series repeat the matching
// sweeps through this PR's merge-scan over canonical AttributeSets. See
// fig11_matching_table for the paper-style table and bench/matching_hotpath
// for the dispatch-level comparison.

#include <benchmark/benchmark.h>

#include "src/apps/animal.h"
#include "src/naming/matching.h"
#include "src/util/rng.h"

namespace diffusion {
namespace {

void Shuffle(AttributeVector* attrs, Rng* rng) {
  for (size_t i = attrs->size(); i > 1; --i) {
    std::swap((*attrs)[i - 1],
              (*attrs)[static_cast<size_t>(rng->NextInt(0, static_cast<int64_t>(i) - 1))]);
  }
}

AttributeVector MakeSetB(size_t attrs, SetGrowth growth, bool matching, Rng* rng) {
  AttributeVector set_b = GrowSetB(attrs, growth);
  if (!matching) {
    set_b = MakeNoMatch(set_b);
  }
  Shuffle(&set_b, rng);
  return set_b;
}

void RunMatchBenchmark(benchmark::State& state, SetGrowth growth, bool matching) {
  Rng rng(99);
  AttributeVector set_a = AnimalInterestSetA();
  Shuffle(&set_a, &rng);
  const AttributeVector set_b =
      MakeSetB(static_cast<size_t>(state.range(0)), growth, matching, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwoWayMatchLinear(set_a, set_b));
  }
  state.counters["attrs_in_b"] = static_cast<double>(state.range(0));
}

// The same sweep through the canonical merge-scan path (pre-built sets, as
// the diffusion core holds them). Compare against the *Linear series above.
void RunMatchBenchmarkCanonical(benchmark::State& state, SetGrowth growth, bool matching) {
  Rng rng(99);
  AttributeVector set_a = AnimalInterestSetA();
  Shuffle(&set_a, &rng);
  const AttributeSet canonical_a(set_a);
  const AttributeSet canonical_b(
      MakeSetB(static_cast<size_t>(state.range(0)), growth, matching, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwoWayMatch(canonical_a, canonical_b));
  }
  state.counters["attrs_in_b"] = static_cast<double>(state.range(0));
}

void BM_Match_IS(benchmark::State& state) {
  RunMatchBenchmark(state, SetGrowth::kActualIs, true);
}
void BM_Match_EQ(benchmark::State& state) {
  RunMatchBenchmark(state, SetGrowth::kFormalEq, true);
}
void BM_NoMatch_IS(benchmark::State& state) {
  RunMatchBenchmark(state, SetGrowth::kActualIs, false);
}
void BM_NoMatch_EQ(benchmark::State& state) {
  RunMatchBenchmark(state, SetGrowth::kFormalEq, false);
}

void BM_Match_IS_Canonical(benchmark::State& state) {
  RunMatchBenchmarkCanonical(state, SetGrowth::kActualIs, true);
}
void BM_Match_EQ_Canonical(benchmark::State& state) {
  RunMatchBenchmarkCanonical(state, SetGrowth::kFormalEq, true);
}

BENCHMARK(BM_Match_IS)->DenseRange(6, 30, 6);
BENCHMARK(BM_Match_EQ)->DenseRange(6, 30, 6);
BENCHMARK(BM_NoMatch_IS)->DenseRange(6, 30, 6);
BENCHMARK(BM_NoMatch_EQ)->DenseRange(6, 30, 6);
BENCHMARK(BM_Match_IS_Canonical)->DenseRange(6, 30, 6);
BENCHMARK(BM_Match_EQ_Canonical)->DenseRange(6, 30, 6);

// One-way matching and hashing, for context.
void BM_OneWayMatch(benchmark::State& state) {
  const AttributeVector set_a = AnimalInterestSetA();
  const AttributeVector set_b = GrowSetB(static_cast<size_t>(state.range(0)),
                                         SetGrowth::kActualIs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OneWayMatchLinear(set_a, set_b));
  }
}
BENCHMARK(BM_OneWayMatch)->DenseRange(6, 30, 12);

void BM_HashAttributes(benchmark::State& state) {
  const AttributeVector set_b = GrowSetB(static_cast<size_t>(state.range(0)),
                                         SetGrowth::kActualIs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashAttributes(set_b));
  }
}
BENCHMARK(BM_HashAttributes)->DenseRange(6, 30, 12);

}  // namespace
}  // namespace diffusion
