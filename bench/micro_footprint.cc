// §4.3's micro-diffusion footprint and function check.
//
// "Micro-diffusion is a subset of our full system, retaining only gradients,
// condensing attributes to a single tag ... it adds only 2050 bytes of code
// and 106 bytes of data to its host operating system ... statically
// configured to support 5 active gradients and a cache of 10 packets of the
// 2 relevant bytes per packet."
//
// This binary reports the engine's static state budget (the code-size claim
// is compiler/ISA-specific; the data budget is the enforceable one), checks
// wire compatibility with full diffusion, and runs the tiered deployment
// (mote tier gatewayed into a full-diffusion tier) end to end.

#include <cstdio>
#include <vector>

#include "src/core/message.h"
#include "src/core/node.h"
#include "src/micro/micro_gateway.h"
#include "src/micro/micro_node.h"
#include "src/testbed/topology.h"

namespace diffusion {
namespace {

int Main() {
  std::printf("=== Micro-diffusion (§4.3) ===\n\n");
  std::printf("Static engine budgets:\n");
  std::printf("  gradients: %zu slots (paper: 5)\n", MicroNode::kMaxGradients);
  std::printf("  packet cache: %zu entries x 2 bytes (paper: 10 x 2)\n", MicroNode::kCacheEntries);
  std::printf("  engine state: %zu bytes (paper: 106 B of data)\n", MicroNode::StateBytes());
  std::printf("  interest wire size: %zu B, data wire size: %zu B\n", kMicroInterestWireSize,
              kMicroDataWireSize);

  // Wire compatibility check: a full node parses a micro packet.
  MicroMessage micro;
  micro.type = MessageType::kData;
  micro.origin = 7;
  micro.origin_seq = 1;
  micro.tag = 42;
  micro.has_value = true;
  micro.value = 1234;
  uint8_t buffer[kMicroMaxWireSize];
  const size_t size = MicroEncode(micro, buffer);
  const auto parsed = Message::Deserialize(std::vector<uint8_t>(buffer, buffer + size));
  std::printf("  header compatibility: full diffusion %s micro packets\n",
              parsed.has_value() ? "parses" : "FAILS TO PARSE");

  // Tiered deployment: 3 motes -> gateway -> 3 full nodes -> user.
  Simulator sim(5);
  auto upper_topology = std::make_unique<ExplicitTopology>();
  upper_topology->AddSymmetricLink(1, 2);
  upper_topology->AddSymmetricLink(2, 3);
  Channel upper(&sim, std::move(upper_topology));
  auto mote_topology = std::make_unique<ExplicitTopology>();
  mote_topology->AddSymmetricLink(100, 101);
  mote_topology->AddSymmetricLink(101, 102);
  Channel mote_channel(&sim, std::move(mote_topology));

  const RadioConfig rconfig = TestbedRadioConfig();
  DiffusionNode user(&sim, &upper, 1, NodeOptions{.radio = rconfig});
  DiffusionNode relay(&sim, &upper, 2, NodeOptions{.radio = rconfig});
  DiffusionNode gateway_full(&sim, &upper, 3, NodeOptions{.radio = rconfig});
  MicroNode gateway_mote(&sim, &mote_channel, 100, rconfig);
  MicroNode mote_relay(&sim, &mote_channel, 101, rconfig);
  MicroNode sensor(&sim, &mote_channel, 102, rconfig);

  MicroGateway gateway(&gateway_full, &gateway_mote);
  constexpr MicroTag kPhotoTag = 9;
  gateway.Bridge(kPhotoTag, {Attribute::String(kKeyType, AttrOp::kIs, "photo")});

  size_t readings_received = 0;
  (void)user.Subscribe({ClassEq(kClassData), Attribute::String(kKeyType, AttrOp::kEq, "photo")},
                 [&readings_received](const AttributeVector&) { ++readings_received; });
  sim.RunUntil(5 * kSecond);

  // Mote readings every 2 s for a minute, two hops across the mote tier.
  for (int i = 0; i < 30; ++i) {
    sim.After(i * 2 * kSecond, [&sensor, i] { sensor.SendData(kPhotoTag, 100 + i); });
  }
  sim.RunUntil(2 * kMinute);

  std::printf("\nTiered deployment (2-hop mote tier -> gateway -> 2-hop full tier):\n");
  std::printf("  mote tier tasked only after a full-tier interest arrived: %s\n",
              gateway.TagTasked(kPhotoTag) ? "yes" : "NO");
  std::printf("  readings bridged at gateway: %llu / 30\n",
              static_cast<unsigned long long>(gateway.readings_bridged()));
  std::printf("  readings delivered to user: %zu / 30\n", readings_received);
  std::printf("  mote relay forwarded %llu packets within %zu B of engine state\n",
              static_cast<unsigned long long>(mote_relay.stats().forwarded),
              MicroNode::StateBytes());
  return readings_received > 0 ? 0 : 1;
}

}  // namespace
}  // namespace diffusion

int main() { return diffusion::Main(); }
