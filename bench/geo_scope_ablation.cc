// Geo-scoped interest flooding ablation (the §4.2/§7 extension).
//
// "In our current implementation interests and exploratory messages are
// flooded through the network ... We are currently exploring using filters
// to optimize diffusion (avoiding flooding) with geographic information."
//
// A grid network with the sink in one corner and the queried region at the
// far end of the same edge; the GeoScopeFilter suppresses interest
// re-flooding at nodes outside the sink-to-region corridor. Expected shape:
// with scoping on, interests stop reaching off-corridor nodes, total bytes
// per event drop, and delivery is unaffected (the corridor retains the
// routes that matter).

#include <cstdio>

#include "bench/bench_flags.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"

namespace diffusion {
namespace {

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int grid = static_cast<int>(bench::IntFlag(argc, argv, "grid", 6));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 10));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 4000));

  std::printf("=== Geo-scoped interest flooding (%dx%d grid, sink corner -> far-edge region,\n",
              grid, grid);
  std::printf("    %d runs x %d min) ===\n\n", runs, minutes);
  std::printf("%-14s  %-18s  %-16s  %-16s\n", "geo scoping", "bytes/event", "delivery %",
              "interests pruned");

  for (bool geo : {false, true}) {
    RunningStat bytes;
    RunningStat delivery;
    RunningStat pruned;
    for (int run = 0; run < runs; ++run) {
      GeoParams params;
      params.grid = static_cast<size_t>(grid);
      params.geo_scope = geo;
      params.duration = static_cast<SimDuration>(minutes) * kMinute;
      params.seed = base_seed + static_cast<uint64_t>(run);
      const GeoResult result = RunGeoExperiment(params);
      bytes.Add(result.bytes_per_event);
      delivery.Add(result.delivery_rate * 100.0);
      pruned.Add(static_cast<double>(result.interests_pruned));
    }
    std::printf("%-14s  %-18s  %-16s  %-16.0f\n", geo ? "on" : "off",
                FormatWithCI(bytes, 0).c_str(), FormatWithCI(delivery, 1).c_str(), pruned.mean());
  }
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
