// --jobs replication glue for the bench binaries.
//
// Every figure in the paper is a mean over 3-5 independent (seed, params)
// replicates; the benches reproduce them by fanning those replicates out
// over a ReplicationPool. Contract with the flags:
//
//   --jobs=N   worker threads; 0 or absent = hardware concurrency; 1 = the
//              serial pre-pool behavior (no threads spawned)
//
// Output is bit-identical for every N: results come back in index (= seed)
// order, aggregation consumes them front-to-back, and traced replicates
// record into private buffers merged to --trace-out in index order after
// the join.

#ifndef BENCH_REPLICATE_H_
#define BENCH_REPLICATE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "src/sim/replication.h"
#include "src/trace/trace.h"

namespace diffusion {
namespace bench {

// Parses --jobs=N and resolves 0/absent to the hardware concurrency.
inline unsigned JobsFlag(int argc, char** argv) {
  const int64_t jobs = IntFlag(argc, argv, "jobs", 0);
  return ReplicationPool::ResolveJobs(jobs > 0 ? static_cast<unsigned>(jobs) : 0);
}

// Buffer i is non-null iff `trace_out` is non-empty and traced(i) (a null
// `traced` selects replicate 0 only — the benches' "trace the first run"
// convention).
std::vector<std::unique_ptr<MemoryTraceSink>> MakeTraceBuffers(
    size_t count, const std::string& trace_out, const std::function<bool(size_t)>& traced);

// Runs run(i, buffer_i) for i in [0, count) across `jobs` workers, returns
// the per-replicate results in index order, and merges the trace buffers
// into `trace_out` (when non-empty) after the pool joins.
template <typename Result>
std::vector<Result> RunReplicates(unsigned jobs, size_t count, const std::string& trace_out,
                                  const std::function<bool(size_t)>& traced,
                                  const std::function<Result(size_t, TraceSink*)>& run) {
  const std::vector<std::unique_ptr<MemoryTraceSink>> buffers =
      MakeTraceBuffers(count, trace_out, traced);
  ReplicationPool pool(jobs);
  std::vector<Result> results =
      pool.Map<Result>(count, [&run, &buffers](size_t i) { return run(i, buffers[i].get()); });
  if (!trace_out.empty()) {
    MergeTraceBuffers(trace_out, buffers);
  }
  return results;
}

}  // namespace bench
}  // namespace diffusion

#endif  // BENCH_REPLICATE_H_
