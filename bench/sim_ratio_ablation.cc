// §6.1's simulation comparison: why the testbed saved 42% while the earlier
// simulations saved 3-5x.
//
// "The primary reason for this difference is differences in ratio of
// exploratory to data messages ... In simulation the ratio of exploratory to
// data messages sent from a source was about 1:100 (exploratory every 50 s,
// data every 0.5 s, 64 B packets) ... In our testbed this ratio was about
// 1:10."
//
// This ablation runs a larger random network (default 50 nodes, 5 sources, 5
// sinks, 1.6 Mb/s radios as in the ns simulations) at both ratios, with and
// without suppression, and reports the aggregation savings factor. Expected
// shape: the savings factor grows markedly from the 1:10 to the 1:100
// configuration, because flooded exploratory traffic (which aggregation
// merges entirely) stops dominating the reinforced-path data traffic.

#include <cstdio>

#include "bench/bench_flags.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"

namespace diffusion {
namespace {

struct RatioConfig {
  const char* label;
  SimDuration event_interval;
  int exploratory_every;
};

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int nodes = static_cast<int>(bench::IntFlag(argc, argv, "nodes", 50));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 5));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 3000));

  const RatioConfig ratios[] = {
      // Testbed-like: events every 6 s, 1-in-10 exploratory.
      {"1:10 (testbed-like)", 6 * kSecond, 10},
      // Simulation-like: events every 0.5 s, 1-in-100 exploratory.
      {"1:100 (ns-sim-like)", 500 * kMillisecond, 100},
  };

  std::printf("=== Exploratory:data ratio ablation (%d nodes, 5 sources, 5 sinks,\n", nodes);
  std::printf("    1.6 Mb/s radios, %d runs x %d min) ===\n\n", runs, minutes);
  std::printf("%-22s  %-18s  %-18s  %-10s\n", "ratio", "suppressed B/evt", "plain B/evt",
              "savings");

  for (const RatioConfig& ratio : ratios) {
    RunningStat with_suppression;
    RunningStat without_suppression;
    for (int run = 0; run < runs; ++run) {
      ScaleParams params;
      params.nodes = static_cast<size_t>(nodes);
      params.event_interval = ratio.event_interval;
      params.exploratory_every = ratio.exploratory_every;
      params.duration = static_cast<SimDuration>(minutes) * kMinute;
      params.seed = base_seed + static_cast<uint64_t>(run);

      params.suppression = true;
      with_suppression.Add(RunScaleExperiment(params).bytes_per_event);
      params.suppression = false;
      without_suppression.Add(RunScaleExperiment(params).bytes_per_event);
    }
    const double factor = with_suppression.mean() > 0.0
                              ? without_suppression.mean() / with_suppression.mean()
                              : 0.0;
    std::printf("%-22s  %-18s  %-18s  %8.2fx\n", ratio.label,
                FormatWithCI(with_suppression, 0).c_str(),
                FormatWithCI(without_suppression, 0).c_str(), factor);
  }
  std::printf(
      "\nPaper checkpoints: ~1.7x savings at 1:10 (the testbed's 42%%), 3-5x at 1:100\n"
      "(the earlier simulations, Figure 6b of [23]).\n");
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
