// "Figure 6b from [23]" — the prior ns simulations §6.1 compares against.
//
// "Previous simulation studies have shown that aggregation can reduce energy
// consumption by a factor of 3-5x in a large network (50-250 nodes) with
// five active sources and five sinks." This bench reproduces that study's
// configuration (1.6 Mb/s radios, 64 B messages, data every 0.5 s,
// exploratory every 50 s ≈ 1:100) over the node-count sweep and reports the
// measured-energy savings factor of in-network duplicate suppression.
//
// Expected shape: the savings factor sits in the paper's 3-5x band across
// the sweep — far above the testbed's 1.7x, for the ratio reasons §6.1
// explains.

#include <cmath>
#include <cstdio>

#include "bench/bench_flags.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"

namespace diffusion {
namespace {

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 4));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 9500));

  const size_t node_counts[] = {50, 100, 150, 200, 250};

  std::printf("=== Prior-simulation reproduction (5 sources, 5 sinks, 1.6 Mb/s, 64 B\n");
  std::printf("    messages, data/0.5 s, exploratory/50 s; %d runs x %d min) ===\n\n", runs,
              minutes);
  std::printf("%-8s  %-20s  %-20s  %-10s\n", "nodes", "comm-energy (supp)", "comm-energy (none)",
              "savings");
  std::printf("(communication energy only — the ns study's radios made idle listening\n negligible next to tx/rx; see energy_model for the idle-dominated testbed view)\n\n");

  for (size_t nodes : node_counts) {
    RunningStat with_suppression;
    RunningStat without_suppression;
    for (int run = 0; run < runs; ++run) {
      ScaleParams params;
      params.nodes = nodes;
      params.field_size = 100.0 * std::sqrt(static_cast<double>(nodes) / 50.0);
      params.duration = static_cast<SimDuration>(minutes) * kMinute;
      params.seed = base_seed + static_cast<uint64_t>(run);

      params.suppression = true;
      with_suppression.Add(RunScaleExperiment(params).comm_energy_per_event);
      params.suppression = false;
      without_suppression.Add(RunScaleExperiment(params).comm_energy_per_event);
    }
    const double factor = with_suppression.mean() > 0.0
                              ? without_suppression.mean() / with_suppression.mean()
                              : 0.0;
    std::printf("%-8zu  %-20s  %-20s  %8.2fx\n", nodes,
                FormatWithCI(with_suppression, 2).c_str(),
                FormatWithCI(without_suppression, 2).c_str(), factor);
  }
  std::printf("\nPaper checkpoint: 3-5x energy savings across 50-250 nodes (Figure 6b of\n");
  std::printf("[23]) versus the testbed's 1.7x at its 1:10 exploratory:data ratio.\n");
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
