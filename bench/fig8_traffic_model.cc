// §6.1's analytic traffic model — the paper's own cross-check on Figure 8.
//
// "Summing the message cost and normalizing per event we expect aggregation
// to provide a flat 990 B/event independent of the number of sources, and we
// expect bytes sent per event to increase from 990 to 3289 B/event without
// aggregation as the number of sources rise from 1 to 4."
//
// This binary prints the model's per-term breakdown and totals for 1-4
// sources under the three aggregation idealizations, so Figure 8's measured
// points can be compared against the same bracket the authors used.

#include <cstdio>
#include <initializer_list>

#include "src/testbed/traffic_model.h"

namespace diffusion {
namespace {

const char* ModelName(AggregationModel model) {
  switch (model) {
    case AggregationModel::kNone:
      return "none";
    case AggregationModel::kIdeal:
      return "ideal";
    case AggregationModel::kFirstHop:
      return "first-hop";
  }
  return "?";
}

int Main() {
  const TrafficModelParams params;
  std::printf("=== §6.1 analytic traffic model (127 B messages, 14-node floods, 5-hop path,\n");
  std::printf("    interests/60 s, events/6 s, 1-in-10 exploratory) ===\n\n");

  std::printf("Messages per event, by term (4 sources):\n");
  for (AggregationModel model :
       {AggregationModel::kNone, AggregationModel::kFirstHop, AggregationModel::kIdeal}) {
    std::printf("  %-10s interest=%.2f data=%.2f exploratory=%.2f reinforcement=%.2f\n",
                ModelName(model), ModelInterestMessagesPerEvent(params),
                ModelDataMessagesPerEvent(params, 4, model),
                ModelExploratoryMessagesPerEvent(params, 4, model),
                ModelReinforcementMessagesPerEvent(params, 4, model));
  }

  std::printf("\nBytes per event:\n");
  std::printf("%-8s  %-12s  %-12s  %-12s\n", "sources", "none", "first-hop", "ideal");
  for (int sources = 1; sources <= 4; ++sources) {
    std::printf("%-8d  %-12.0f  %-12.0f  %-12.0f\n", sources,
                ModelBytesPerEvent(params, sources, AggregationModel::kNone),
                ModelBytesPerEvent(params, sources, AggregationModel::kFirstHop),
                ModelBytesPerEvent(params, sources, AggregationModel::kIdeal));
  }

  std::printf("\nPaper checkpoints: ideal aggregation flat at ~990 B/event; without\n");
  std::printf("aggregation 990 -> 3289 B/event from 1 to 4 sources.\n");
  std::printf("This model: 1 source none = %.0f; 4 sources none = %.0f; ideal(4) = %.0f.\n",
              ModelBytesPerEvent(params, 1, AggregationModel::kNone),
              ModelBytesPerEvent(params, 4, AggregationModel::kNone),
              ModelBytesPerEvent(params, 4, AggregationModel::kIdeal));
  return 0;
}

}  // namespace
}  // namespace diffusion

int main() { return diffusion::Main(); }
