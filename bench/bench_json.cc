#include "bench/bench_json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace diffusion {
namespace bench {
namespace {

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

std::string FormatValue(double value) {
  // Round-trippable without scientific noise for the magnitudes benches emit.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

// ---- validation helpers (string-level, no JSON library in the image) ----

// Finds `"key"` and returns the position just past the following ':', or
// npos. Search starts at `from`.
size_t FindKey(const std::string& text, const std::string& key, size_t from) {
  const std::string quoted = "\"" + key + "\"";
  size_t pos = text.find(quoted, from);
  if (pos == std::string::npos) {
    return std::string::npos;
  }
  pos = text.find(':', pos + quoted.size());
  return pos == std::string::npos ? std::string::npos : pos + 1;
}

// Parses a JSON string literal starting at the first non-space char after
// `pos`. Returns false if there isn't one.
bool ReadString(const std::string& text, size_t pos, std::string* out) {
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (pos >= text.size() || text[pos] != '"') {
    return false;
  }
  std::string value;
  for (++pos; pos < text.size(); ++pos) {
    if (text[pos] == '\\') {
      ++pos;
      continue;
    }
    if (text[pos] == '"') {
      *out = value;
      return true;
    }
    value += text[pos];
  }
  return false;
}

bool ReadNumber(const std::string& text, size_t pos, double* out) {
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  const char* start = text.c_str() + pos;
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start || !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

std::string BenchJson(const std::string& bench_name, const std::vector<BenchResult>& results) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"" << kBenchJsonSchema << "\",\n";
  out << "  \"bench\": \"" << EscapeJson(bench_name) << "\",\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    out << "    {\"name\": \"" << EscapeJson(results[i].name) << "\", \"unit\": \""
        << EscapeJson(results[i].unit) << "\", \"value\": " << FormatValue(results[i].value)
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<BenchResult>& results) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  file << BenchJson(bench_name, results);
  return static_cast<bool>(file);
}

bool ValidateBenchJson(const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) {
    return Fail(error, path + ": cannot open");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) {
    return Fail(error, path + ": empty file");
  }

  size_t pos = FindKey(text, "schema", 0);
  std::string schema;
  if (pos == std::string::npos || !ReadString(text, pos, &schema)) {
    return Fail(error, path + ": missing \"schema\" string");
  }
  if (schema != kBenchJsonSchema) {
    return Fail(error, path + ": schema \"" + schema + "\" != \"" + kBenchJsonSchema + "\"");
  }

  pos = FindKey(text, "bench", 0);
  std::string bench_name;
  if (pos == std::string::npos || !ReadString(text, pos, &bench_name) || bench_name.empty()) {
    return Fail(error, path + ": missing \"bench\" name");
  }

  const size_t results_pos = FindKey(text, "results", 0);
  if (results_pos == std::string::npos) {
    return Fail(error, path + ": missing \"results\" array");
  }
  size_t entry = text.find('{', results_pos);
  size_t count = 0;
  const size_t results_end = text.find(']', results_pos);
  if (results_end == std::string::npos) {
    return Fail(error, path + ": unterminated \"results\" array");
  }
  while (entry != std::string::npos && entry < results_end) {
    std::string name;
    std::string unit;
    double value = 0.0;
    const size_t name_pos = FindKey(text, "name", entry);
    const size_t unit_pos = FindKey(text, "unit", entry);
    const size_t value_pos = FindKey(text, "value", entry);
    if (name_pos == std::string::npos || !ReadString(text, name_pos, &name) || name.empty()) {
      return Fail(error, path + ": result #" + std::to_string(count) + " missing \"name\"");
    }
    if (unit_pos == std::string::npos || !ReadString(text, unit_pos, &unit) || unit.empty()) {
      return Fail(error, path + ": result \"" + name + "\" missing \"unit\"");
    }
    if (value_pos == std::string::npos || !ReadNumber(text, value_pos, &value)) {
      return Fail(error, path + ": result \"" + name + "\" missing finite \"value\"");
    }
    ++count;
    entry = text.find('{', text.find('}', entry));
  }
  if (count == 0) {
    return Fail(error, path + ": \"results\" array is empty");
  }
  return true;
}

}  // namespace bench
}  // namespace diffusion
