// Machine-readable benchmark output, shared by the bench binaries and the CI
// bench-smoke job.
//
// Every file carries the "diffusion-bench-v1" schema:
//
//   {
//     "schema": "diffusion-bench-v1",
//     "bench": "<binary name>",
//     "results": [
//       {"name": "<metric>", "unit": "<ns/op|ms|x|...>", "value": <number>},
//       ...
//     ]
//   }
//
// ValidateBenchJson is the drift guard: CI and scripts/check.sh run it
// against both freshly generated output and the checked-in baseline, so a
// schema change that forgets to bump the version string fails loudly.

#ifndef BENCH_BENCH_JSON_H_
#define BENCH_BENCH_JSON_H_

#include <string>
#include <vector>

namespace diffusion {
namespace bench {

inline constexpr char kBenchJsonSchema[] = "diffusion-bench-v1";

struct BenchResult {
  std::string name;
  std::string unit;
  double value = 0.0;
};

// Renders the schema'd JSON document (two-space indent, trailing newline).
std::string BenchJson(const std::string& bench_name, const std::vector<BenchResult>& results);

// Writes BenchJson(...) to `path`. Returns false (with perror) on I/O error.
bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<BenchResult>& results);

// Structural validation of a bench JSON file: schema string matches
// kBenchJsonSchema, a non-empty "bench" name is present, and every entry in
// "results" has a name, a unit, and a finite numeric value. On failure
// returns false and, when `error` is non-null, stores a one-line diagnosis.
bool ValidateBenchJson(const std::string& path, std::string* error);

}  // namespace bench
}  // namespace diffusion

#endif  // BENCH_BENCH_JSON_H_
