// Propagation-model sensitivity — §6.4's modelling complaint, quantified.
//
// "Current simulation models, even with statistical noise, do not adequately
// reflect these observed propagation characteristics [asymmetric links,
// intermittent connectivity]." This bench runs the Figure-8 workload
// (4 sources, suppression on) under the calibrated disk channel and under
// log-normal shadowing at increasing sigma — which introduces gray-zone
// links and per-direction asymmetry — and reports how the headline numbers
// move. The point is methodological: conclusions about delivery are
// channel-model-sensitive, while the aggregation *savings* (a ratio) is far
// more robust.

#include <cstdio>

#include "bench/bench_flags.h"
#include "src/testbed/experiments.h"
#include "src/testbed/harness.h"

namespace diffusion {
namespace {

int Main(int argc, char** argv) {
  const int runs = static_cast<int>(bench::IntFlag(argc, argv, "runs", 3));
  const int minutes = static_cast<int>(bench::IntFlag(argc, argv, "minutes", 15));
  const uint64_t base_seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 9000));

  struct Row {
    const char* label;
    bool shadowing;
    double sigma;
  };
  const Row rows[] = {
      {"disk (calibrated)", false, 0.0},
      {"shadowing σ=2 dB", true, 2.0},
      {"shadowing σ=4 dB", true, 4.0},
      {"shadowing σ=6 dB", true, 6.0},
  };

  std::printf("=== Propagation sensitivity (Figure-8 workload, 4 sources,\n");
  std::printf("    %d runs x %d min) ===\n\n", runs, minutes);
  std::printf("%-20s  %-16s  %-16s  %-16s  %-10s\n", "channel", "supp B/evt", "plain B/evt",
              "delivery %", "savings");

  for (const Row& row : rows) {
    RunningStat with_suppression;
    RunningStat without_suppression;
    RunningStat delivery;
    for (int run = 0; run < runs; ++run) {
      Fig8Params params;
      params.sources = 4;
      params.shadowing = row.shadowing;
      params.shadowing_sigma_db = row.sigma;
      params.duration = static_cast<SimDuration>(minutes) * kMinute;
      params.seed = base_seed + static_cast<uint64_t>(run);
      params.suppression = true;
      const Fig8Result with = RunFig8(params);
      with_suppression.Add(with.bytes_per_event);
      delivery.Add(with.delivery_rate * 100.0);
      params.suppression = false;
      without_suppression.Add(RunFig8(params).bytes_per_event);
    }
    const double savings = without_suppression.mean() > 0.0
                               ? 1.0 - with_suppression.mean() / without_suppression.mean()
                               : 0.0;
    std::printf("%-20s  %-16s  %-16s  %-16s  %8.1f%%\n", row.label,
                FormatWithCI(with_suppression, 0).c_str(),
                FormatWithCI(without_suppression, 0).c_str(),
                FormatWithCI(delivery, 1).c_str(), savings * 100.0);
  }
  std::printf(
      "\nGray zones and asymmetric links (rising σ) move the absolute numbers but the\n"
      "aggregation savings ratio holds — the paper's headline survives the channel\n"
      "model it worried about (§6.4).\n");
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
