// Thread-scaling benchmark for the sharded parallel simulation core — the
// proof (and the regression gate) for src/sim/sharded_engine.
//
// The workload is a 10,000-node surveillance field: a side x side grid at
// the ns-simulation radio (1.6 Mb/s), partitioned into a 4x4 region grid,
// with one surveillance sink per region and four sources around it — load
// spread evenly over the regions so static region assignment balances. The
// same world runs at 1, 2, 4 and 8 worker threads.
//
// Determinism contract:
//  * Every run's output is byte-identical at every thread count. The
//    benchmark enforces this internally (trace fingerprints from a traced
//    run per thread count must agree, as must event and byte totals of the
//    timed runs), and scripts/check.sh additionally cmp-gates
//    --deterministic-only output across --threads values.
//  * The timing section (events_per_sec_t*, parallel_speedup_4t) varies run
//    to run like every wall-clock metric.
//
// Emits BENCH_parallel.json ("diffusion-bench-v1" schema). Flags:
//   --out=PATH            where to write the JSON (default BENCH_parallel.json)
//   --check=PATH          validate an existing file against the schema; no run
//   --side=N              grid side (default 100 -> 10,000 nodes)
//   --regions=N           target region count (default 16)
//   --seconds=N           simulated seconds per timed run (default 30)
//   --fp-seconds=N        simulated seconds per traced fingerprint run
//                         (default 10)
//   --threads=N           with --deterministic-only: the thread count to run
//   --deterministic-only  one traced run; emit only deterministic metrics
//                         (the cross-thread cmp gate), no timing
//   --require-speedup=X   exit non-zero unless parallel_speedup_4t reaches X.
//                         Only enforced when at least 4 hardware threads are
//                         available (the determinism gates always run); with
//                         --check, re-verifies the recorded value the same
//                         way against the recorded threads_available.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_json.h"
#include "src/apps/surveillance.h"
#include "src/testbed/sharded_world.h"
#include "src/testbed/topology.h"
#include "src/trace/trace.h"

namespace diffusion {
namespace {

constexpr double kSpacing = 10.0;
constexpr double kRange = 12.0;
constexpr SimTime kSourceStart = 1 * kSecond;

NodeId GridId(int side, int row, int col) {
  return static_cast<NodeId>(row * side + col) + 1;
}

// One run's deterministic output plus its wall time.
struct RunOutput {
  uint64_t events_executed = 0;
  uint64_t diffusion_bytes = 0;
  uint64_t border_frames = 0;
  uint64_t deliveries_clamped = 0;
  std::vector<uint64_t> clamped_by_region;
  uint64_t fingerprint = 0;
  uint64_t trace_events = 0;
  size_t distinct_events = 0;
  int regions = 0;
  SimDuration window = 0;
  double wall_seconds = 0.0;
};

RunOutput RunWorld(int side, int regions, unsigned threads, uint64_t seed, int sim_seconds,
                   bool traced) {
  const TestbedLayout layout = GridLayout(static_cast<size_t>(side), static_cast<size_t>(side),
                                          kSpacing, kRange);
  ShardedWorldParams params;
  params.regions = regions;
  params.threads = threads;
  params.seed = seed;
  params.radio = SimulationRadioConfig();
  ShardedWorld world(layout, params);

  FingerprintTraceSink trace;
  if (traced) {
    world.set_merged_trace_sink(&trace);
  }

  // One sink per region cell center, four sources three hops out — every
  // region carries comparable load, and the neighborhoods straddle region
  // borders (the cell centers sit near the spatial cut lines).
  const int cells = 4;  // app placement grid; independent of --regions
  const int step = side / cells;
  const int offset = step / 2;
  std::vector<std::unique_ptr<SurveillanceSink>> sinks;
  std::vector<std::unique_ptr<SurveillanceSource>> sources;
  SurveillanceConfig config;
  int32_t next_source_id = 1;
  for (int i = 0; i < cells; ++i) {
    for (int j = 0; j < cells; ++j) {
      const int row = offset + i * step;
      const int col = offset + j * step;
      sinks.push_back(
          std::make_unique<SurveillanceSink>(world.node(GridId(side, row, col)), config));
      sinks.back()->Start();
      const int spread = 3;
      const NodeId source_ids[] = {
          GridId(side, row - spread, col), GridId(side, row + spread, col),
          GridId(side, row, col - spread), GridId(side, row, col + spread)};
      for (NodeId id : source_ids) {
        sources.push_back(
            std::make_unique<SurveillanceSource>(world.node(id), config, next_source_id++));
        SurveillanceSource* source = sources.back().get();
        world.sim_of(id).At(kSourceStart, [source] { source->Start(); });
      }
    }
  }

  RunOutput output;
  const auto start = std::chrono::steady_clock::now();
  output.events_executed = world.RunUntil(sim_seconds * kSecond);
  const auto stop = std::chrono::steady_clock::now();
  output.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start).count();
  for (const auto& [id, node] : world.nodes()) {
    output.diffusion_bytes += node->stats().bytes_sent;
  }
  output.border_frames = world.bridge().frames_handed_off();
  output.deliveries_clamped = world.bridge().deliveries_clamped();
  for (int r = 0; r < world.region_map().regions(); ++r) {
    output.clamped_by_region.push_back(world.bridge().deliveries_clamped_in(r));
  }
  output.fingerprint = trace.fingerprint();
  output.trace_events = trace.count();
  for (const auto& sink : sinks) {
    output.distinct_events += sink->distinct_events();
  }
  output.regions = world.region_map().regions();
  output.window = world.window();
  return output;
}

// Per-region clamp counters (bridge.deliveries_clamped.r<N> in the metrics
// registry). Deterministic: clamping depends only on window geometry, so these
// belong in the cmp-gated deterministic section alongside the total.
void AppendPerRegionClamps(const RunOutput& run, std::vector<bench::BenchResult>* results) {
  for (size_t r = 0; r < run.clamped_by_region.size(); ++r) {
    results->push_back({"deliveries_clamped_r" + std::to_string(r), "count",
                        static_cast<double>(run.clamped_by_region[r])});
  }
}

bool ReadBenchValue(const std::string& path, const std::string& name, double* value) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  std::string text;
  char buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  const std::string needle = "\"name\": \"" + name + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const std::string value_key = "\"value\": ";
  const size_t value_at = text.find(value_key, at);
  if (value_at == std::string::npos) {
    return false;
  }
  *value = std::strtod(text.c_str() + value_at + value_key.size(), nullptr);
  return true;
}

int Main(int argc, char** argv) {
  const double require = std::strtod(
      bench::StringFlag(argc, argv, "require-speedup", "0").c_str(), nullptr);
  const std::string check = bench::StringFlag(argc, argv, "check");
  if (!check.empty()) {
    std::string error;
    if (!bench::ValidateBenchJson(check, &error)) {
      std::fprintf(stderr, "FAIL: %s\n", error.c_str());
      return 1;
    }
    if (require > 0.0) {
      double available = 0.0;
      if (!ReadBenchValue(check, "threads_available", &available)) {
        std::fprintf(stderr, "FAIL: %s has no threads_available metric\n", check.c_str());
        return 1;
      }
      if (available < 4.0) {
        std::printf("SKIP: recorded on %d hardware threads; speedup not meaningful below 4\n",
                    static_cast<int>(available));
      } else {
        double recorded = 0.0;
        if (!ReadBenchValue(check, "parallel_speedup_4t", &recorded)) {
          std::fprintf(stderr, "FAIL: %s has no parallel_speedup_4t metric\n", check.c_str());
          return 1;
        }
        if (recorded < require) {
          std::fprintf(stderr,
                       "FAIL: recorded parallel_speedup_4t %.2fx below --require-speedup=%.1f\n",
                       recorded, require);
          return 1;
        }
      }
    }
    std::printf("%s: valid %s file\n", check.c_str(), bench::kBenchJsonSchema);
    return 0;
  }

  const int side = static_cast<int>(bench::IntFlag(argc, argv, "side", 100));
  const int regions = static_cast<int>(bench::IntFlag(argc, argv, "regions", 16));
  const int seconds = static_cast<int>(bench::IntFlag(argc, argv, "seconds", 30));
  const int fp_seconds = static_cast<int>(bench::IntFlag(argc, argv, "fp-seconds", 10));
  const uint64_t seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 9000));
  const bool deterministic_only = bench::BoolFlag(argc, argv, "deterministic-only");
  const std::string out = bench::StringFlag(argc, argv, "out", "BENCH_parallel.json");
  const unsigned threads_available = std::thread::hardware_concurrency();

  if (deterministic_only) {
    // One traced run at the requested thread count; print and emit only
    // metrics that are a pure function of (seed, side, regions, window) so
    // outputs at different --threads values can be cmp'd byte for byte.
    const unsigned threads = static_cast<unsigned>(bench::IntFlag(argc, argv, "threads", 1));
    const RunOutput run = RunWorld(side, regions, threads, seed, fp_seconds, /*traced=*/true);
    std::printf("nodes=%d regions=%d window_us=%lld events=%llu bytes=%llu border=%llu "
                "clamped=%llu fp=%llu trace_events=%llu delivered=%zu\n",
                side * side, run.regions, static_cast<long long>(run.window / kMicrosecond),
                static_cast<unsigned long long>(run.events_executed),
                static_cast<unsigned long long>(run.diffusion_bytes),
                static_cast<unsigned long long>(run.border_frames),
                static_cast<unsigned long long>(run.deliveries_clamped),
                static_cast<unsigned long long>(run.fingerprint),
                static_cast<unsigned long long>(run.trace_events), run.distinct_events);
    if (!out.empty()) {
      std::vector<bench::BenchResult> results = {
          {"nodes", "count", static_cast<double>(side * side)},
          {"regions", "count", static_cast<double>(run.regions)},
          {"window_us", "us", static_cast<double>(run.window / kMicrosecond)},
          {"sim_seconds", "s", static_cast<double>(fp_seconds)},
          {"events_executed", "count", static_cast<double>(run.events_executed)},
          {"diffusion_bytes", "bytes", static_cast<double>(run.diffusion_bytes)},
          {"border_frames", "count", static_cast<double>(run.border_frames)},
          {"deliveries_clamped", "count", static_cast<double>(run.deliveries_clamped)},
          {"trace_fingerprint", "hash53", static_cast<double>(run.fingerprint)},
          {"trace_events", "count", static_cast<double>(run.trace_events)},
      };
      AppendPerRegionClamps(run, &results);
      if (!bench::WriteBenchJson(out, "parallel_scaling", results)) {
        return 1;
      }
      std::printf("wrote %s\n", out.c_str());
    }
    return 0;
  }

  const unsigned kThreadCounts[] = {1, 2, 4, 8};

  // ---- determinism: traced fingerprint per thread count ------------------
  std::printf("=== Parallel scaling: %dx%d grid, %d regions, %d sim-seconds ===\n\n", side, side,
              regions, seconds);
  RunOutput fp_runs[4];
  for (int i = 0; i < 4; ++i) {
    fp_runs[i] = RunWorld(side, regions, kThreadCounts[i], seed, fp_seconds, /*traced=*/true);
    std::printf("fingerprint @ %u threads       %16llu   (%llu trace events)\n", kThreadCounts[i],
                static_cast<unsigned long long>(fp_runs[i].fingerprint),
                static_cast<unsigned long long>(fp_runs[i].trace_events));
    if (fp_runs[i].fingerprint != fp_runs[0].fingerprint ||
        fp_runs[i].trace_events != fp_runs[0].trace_events) {
      std::fprintf(stderr, "FAIL: trace diverges between 1 and %u threads\n", kThreadCounts[i]);
      return 1;
    }
  }

  // ---- timing: untraced events/sec per thread count ----------------------
  double events_per_sec[4] = {0.0, 0.0, 0.0, 0.0};
  uint64_t reference_events = 0;
  uint64_t reference_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    const RunOutput run =
        RunWorld(side, regions, kThreadCounts[i], seed, seconds, /*traced=*/false);
    // The timed runs must agree with each other too (events and bytes are
    // deterministic whether or not tracing is attached).
    if (i == 0) {
      reference_events = run.events_executed;
      reference_bytes = run.diffusion_bytes;
    } else if (run.events_executed != reference_events ||
               run.diffusion_bytes != reference_bytes) {
      std::fprintf(stderr, "FAIL: timed run diverges at %u threads\n", kThreadCounts[i]);
      return 1;
    }
    events_per_sec[i] =
        run.wall_seconds > 0.0 ? static_cast<double>(run.events_executed) / run.wall_seconds : 0.0;
    std::printf("events/sec @ %u threads        %16.0f\n", kThreadCounts[i], events_per_sec[i]);
  }
  const double speedup_4t = events_per_sec[0] > 0.0 ? events_per_sec[2] / events_per_sec[0] : 0.0;
  std::printf("\n%-28s  %16.2fx\n", "speedup @ 4 threads", speedup_4t);
  std::printf("%-28s  %16u\n", "hardware threads", threads_available);

  if (!out.empty()) {
    std::vector<bench::BenchResult> results = {
        {"nodes", "count", static_cast<double>(side * side)},
        {"regions", "count", static_cast<double>(fp_runs[0].regions)},
        {"window_us", "us", static_cast<double>(fp_runs[0].window / kMicrosecond)},
        {"sim_seconds", "s", static_cast<double>(seconds)},
        {"events_executed", "count", static_cast<double>(fp_runs[0].events_executed)},
        {"diffusion_bytes", "bytes", static_cast<double>(fp_runs[0].diffusion_bytes)},
        {"border_frames", "count", static_cast<double>(fp_runs[0].border_frames)},
        {"deliveries_clamped", "count", static_cast<double>(fp_runs[0].deliveries_clamped)},
        {"trace_fingerprint", "hash53", static_cast<double>(fp_runs[0].fingerprint)},
        {"events_per_sec_t1", "events/s", events_per_sec[0]},
        {"events_per_sec_t2", "events/s", events_per_sec[1]},
        {"events_per_sec_t4", "events/s", events_per_sec[2]},
        {"events_per_sec_t8", "events/s", events_per_sec[3]},
        {"parallel_speedup_4t", "x", speedup_4t},
        {"threads_available", "count", static_cast<double>(threads_available)},
    };
    AppendPerRegionClamps(fp_runs[0], &results);
    if (!bench::WriteBenchJson(out, "parallel_scaling", results)) {
      return 1;
    }
    std::string error;
    if (!bench::ValidateBenchJson(out, &error)) {
      std::fprintf(stderr, "FAIL: emitted file does not validate: %s\n", error.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", out.c_str());
  }

  if (require > 0.0) {
    if (threads_available < 4) {
      std::printf("SKIP: %u hardware threads; --require-speedup needs at least 4\n",
                  threads_available);
    } else if (speedup_4t < require) {
      std::fprintf(stderr, "FAIL: parallel_speedup_4t %.2fx below --require-speedup=%.1f\n",
                   speedup_4t, require);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
