// Congestion-control benchmark: offered load, a flooding node, two sinks.
//
// The paper's testbed MAC has no congestion story ("55-80%" delivery under
// load, §6.1). This bench drives the surveillance workload into collapse
// three ways and measures how much the TrafficPolicy shaping layers
// (src/core/traffic_policy.h, ReferenceShapingPolicy) recover:
//
//   load_sweep  shrink the event interval point by point; each point runs
//               unshaped and shaped
//   flooder     one misbehaving source blasts matching data at ~24x the
//               agreed rate; compare well-behaved delivery against a
//               flooder-free baseline
//   fairness    sinks 28 ("D") and 39 ("U") subscribe concurrently under
//               load; report the min/max delivery spread
//
// Emits BENCH_congestion.json ("diffusion-bench-v1" schema). The output
// contains no wall-clock values: the same seed produces a byte-identical
// file on every run/machine at any --jobs. Flags:
//   --scenario=NAME              load_sweep | flooder | fairness | all
//   --seed=N                     simulation seed (default 1)
//   --minutes=N                  simulated minutes per run (default 6)
//   --jobs=N                     worker threads (0 = hardware concurrency)
//   --out=PATH                   output JSON (default BENCH_congestion.json)
//   --check=PATH                 validate an existing file; no run
//   --trace-out=PATH             JSONL flight-recorder trace (first run)
//   --require-shaping-gain=X     exit 1 unless shaped delivery >= X *
//                                unshaped at the top of the load sweep
//   --require-flood-protection=X exit 1 unless shaped delivery under the
//                                flooder stays within fraction X of the
//                                flooder-free baseline
//   --require-fairness=X         exit 1 unless the shaped two-sink min/max
//                                delivery ratio is >= X

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_json.h"
#include "bench/replicate.h"
#include "src/testbed/congestion.h"

namespace diffusion {
namespace {

double DoubleFlag(int argc, char** argv, const char* name, double fallback) {
  const std::string value = bench::StringFlag(argc, argv, name);
  return value.empty() ? fallback : std::strtod(value.c_str(), nullptr);
}

// The sweep's offered-load points, most gentle first. 6 s is the paper's
// agreed rate; the top of the sweep is 32x that, well past the channel's
// carrying capacity on the testbed's ~5-hop paths.
const SimDuration kSweepIntervals[] = {6 * kSecond, 3 * kSecond, 1500 * kMillisecond,
                                       750 * kMillisecond, 375 * kMillisecond,
                                       187 * kMillisecond, 93 * kMillisecond,
                                       46 * kMillisecond};

struct RunSpec {
  std::string label;
  CongestionRunParams params;
};

int Main(int argc, char** argv) {
  const std::string check = bench::StringFlag(argc, argv, "check");
  if (!check.empty()) {
    std::string error;
    if (!bench::ValidateBenchJson(check, &error)) {
      std::fprintf(stderr, "FAIL: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s: valid %s file\n", check.c_str(), bench::kBenchJsonSchema);
    return 0;
  }

  const std::string scenario_flag = bench::StringFlag(argc, argv, "scenario", "all");
  const uint64_t seed = static_cast<uint64_t>(bench::IntFlag(argc, argv, "seed", 1));
  const int64_t minutes = bench::IntFlag(argc, argv, "minutes", 6);
  const std::string out = bench::StringFlag(argc, argv, "out", "BENCH_congestion.json");
  const std::string trace_out = bench::StringFlag(argc, argv, "trace-out");
  const double require_gain = DoubleFlag(argc, argv, "require-shaping-gain", 0.0);
  const double require_protection = DoubleFlag(argc, argv, "require-flood-protection", -1.0);
  const double require_fairness = DoubleFlag(argc, argv, "require-fairness", 0.0);
  const unsigned jobs = bench::JobsFlag(argc, argv);

  if (minutes < 2) {
    std::fprintf(stderr, "--minutes must be >= 2 (60 s warmup + measurement window)\n");
    return 1;
  }

  bool run_sweep = scenario_flag == "all" || scenario_flag == "load_sweep";
  bool run_flooder = scenario_flag == "all" || scenario_flag == "flooder";
  bool run_fairness = scenario_flag == "all" || scenario_flag == "fairness";
  CongestionScenario parsed;
  if (!run_sweep && !run_flooder && !run_fairness &&
      !CongestionScenarioFromName(scenario_flag, &parsed)) {
    std::fprintf(stderr, "unknown --scenario=%s (load_sweep|flooder|fairness|all)\n",
                 scenario_flag.c_str());
    return 1;
  }

  const TrafficPolicy shaped = ReferenceShapingPolicy();
  CongestionRunParams base;
  base.seed = seed;
  base.end_at = minutes * kMinute;

  // The full run list, in output order. Each entry is one independent
  // simulation; RunReplicates fans them out --jobs at a time and hands the
  // results back in this order, so the JSON is byte-identical at any --jobs.
  std::vector<RunSpec> specs;
  if (run_sweep) {
    for (SimDuration interval : kSweepIntervals) {
      for (bool shape : {false, true}) {
        CongestionRunParams params = base;
        // Redundant sensing: most of the testbed observes the event
        // sequence, so offered load is sources x rate while the useful
        // information rate is just 1/interval — the regime where shaping
        // plus duplicate suppression has room to win and unshaped flooding
        // collapses.
        params.sources = 5;
        params.event_interval = interval;
        if (shape) {
          params.policy = shaped;
        }
        const long long ms = interval / kMillisecond;
        specs.push_back({"sweep_" + std::to_string(ms) + "ms_" +
                             (shape ? "shaped" : "unshaped"),
                         params});
      }
    }
  }
  if (run_flooder) {
    CongestionRunParams baseline = base;
    baseline.sources = 3;  // match the flooder runs' well-behaved set
    specs.push_back({"flooder_baseline", baseline});
    for (bool shape : {false, true}) {
      CongestionRunParams params = baseline;
      params.flooder = true;
      if (shape) {
        params.policy = shaped;
      }
      specs.push_back({std::string("flooder_") + (shape ? "shaped" : "unshaped"), params});
    }
  }
  if (run_fairness) {
    for (bool shape : {false, true}) {
      CongestionRunParams params = base;
      params.second_sink = true;
      params.event_interval = 1500 * kMillisecond;  // 4x load: contention, not collapse
      if (shape) {
        params.policy = shaped;
      }
      specs.push_back({std::string("fairness_") + (shape ? "shaped" : "unshaped"), params});
    }
  }

  std::printf("=== Congestion suite (seed %llu, %lld min/run, %u jobs, %zu runs) ===\n\n",
              static_cast<unsigned long long>(seed), static_cast<long long>(minutes), jobs,
              specs.size());

  const std::vector<CongestionRunResult> run_results =
      bench::RunReplicates<CongestionRunResult>(
          jobs, specs.size(), trace_out, nullptr, [&specs](size_t i, TraceSink* sink) {
            CongestionRunParams params = specs[i].params;
            params.trace_sink = sink;
            return RunCongestionScenario(params);
          });

  std::vector<bench::BenchResult> results;
  std::printf("%-24s %9s %9s %9s %9s %9s\n", "run", "delivery", "sink2", "drops",
              "throttled", "evicted");
  for (size_t i = 0; i < specs.size(); ++i) {
    const CongestionRunResult& r = run_results[i];
    const std::string& label = specs[i].label;
    std::printf("%-24s %8.1f%% %8.1f%% %9llu %9llu %9llu\n", label.c_str(), r.delivery * 100.0,
                r.delivery_second * 100.0, static_cast<unsigned long long>(r.mac_drops_queue_full),
                static_cast<unsigned long long>(r.mac_drops_rate_limited + r.mac_drops_airtime),
                static_cast<unsigned long long>(r.mac_priority_evictions));
    results.push_back({label + "_delivery", "%", r.delivery * 100.0});
    results.push_back({label + "_bytes_sent", "bytes", r.bytes_sent});
    results.push_back({label + "_drops_queue_full", "frames",
                       static_cast<double>(r.mac_drops_queue_full)});
    results.push_back({label + "_drops_rate_limited", "frames",
                       static_cast<double>(r.mac_drops_rate_limited)});
    results.push_back(
        {label + "_drops_airtime", "frames", static_cast<double>(r.mac_drops_airtime)});
    results.push_back({label + "_priority_evictions", "frames",
                       static_cast<double>(r.mac_priority_evictions)});
    if (specs[i].params.second_sink) {
      results.push_back({label + "_delivery_second", "%", r.delivery_second * 100.0});
    }
    if (specs[i].params.flooder) {
      results.push_back({label + "_flooder_events", "events",
                         static_cast<double>(r.flooder_events_generated)});
    }
    if (specs[i].params.policy.AnyLayerEnabled()) {
      results.push_back({label + "_transmits_jittered", "msgs",
                         static_cast<double>(r.transmits_jittered)});
      results.push_back({label + "_scope_expansions", "floods",
                         static_cast<double>(r.interest_scope_expansions)});
      results.push_back(
          {label + "_refresh_backoffs", "periods", static_cast<double>(r.refresh_backoffs)});
    }
  }

  const auto find_run = [&](const std::string& label) -> const CongestionRunResult* {
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].label == label) {
        return &run_results[i];
      }
    }
    return nullptr;
  };

  bool ok = true;
  if (run_sweep) {
    const long long top_ms = kSweepIntervals[std::size(kSweepIntervals) - 1] / kMillisecond;
    const CongestionRunResult* unshaped = find_run("sweep_" + std::to_string(top_ms) + "ms_unshaped");
    const CongestionRunResult* top = find_run("sweep_" + std::to_string(top_ms) + "ms_shaped");
    const double gain =
        unshaped->delivery > 0.0 ? top->delivery / unshaped->delivery
                                 : (top->delivery > 0.0 ? 1e9 : 0.0);
    results.push_back({"sweep_top_shaping_gain", "x", gain});
    std::printf("\nload sweep @%lld ms: unshaped %.1f%%, shaped %.1f%% (%.2fx)\n", top_ms,
                unshaped->delivery * 100.0, top->delivery * 100.0, gain);
    if (require_gain > 0.0 && gain < require_gain) {
      std::fprintf(stderr, "FAIL: shaping gain %.2fx < required %.2fx\n", gain, require_gain);
      ok = false;
    }
  }
  if (run_flooder) {
    const CongestionRunResult* baseline = find_run("flooder_baseline");
    const CongestionRunResult* attacked = find_run("flooder_unshaped");
    const CongestionRunResult* defended = find_run("flooder_shaped");
    const double degradation =
        baseline->delivery > 0.0 ? 1.0 - defended->delivery / baseline->delivery : 1.0;
    results.push_back({"flooder_degradation", "fraction", degradation});
    std::printf("flooder: baseline %.1f%%, unshaped %.1f%%, shaped %.1f%% "
                "(degradation %.1f%%)\n",
                baseline->delivery * 100.0, attacked->delivery * 100.0,
                defended->delivery * 100.0, degradation * 100.0);
    if (require_protection >= 0.0 && degradation > require_protection) {
      std::fprintf(stderr, "FAIL: flooder degradation %.2f > allowed %.2f\n", degradation,
                   require_protection);
      ok = false;
    }
  }
  if (run_fairness) {
    const CongestionRunResult* fair = find_run("fairness_shaped");
    const double lo = std::min(fair->delivery, fair->delivery_second);
    const double hi = std::max(fair->delivery, fair->delivery_second);
    const double ratio = hi > 0.0 ? lo / hi : 0.0;
    results.push_back({"fairness_min_max_ratio", "ratio", ratio});
    std::printf("fairness (shaped): sink 28 %.1f%%, sink 39 %.1f%% (min/max %.2f)\n",
                fair->delivery * 100.0, fair->delivery_second * 100.0, ratio);
    if (require_fairness > 0.0 && ratio < require_fairness) {
      std::fprintf(stderr, "FAIL: fairness ratio %.2f < required %.2f\n", ratio,
                   require_fairness);
      ok = false;
    }
  }

  std::printf("\nShape to check: unshaped delivery collapses as the interval shrinks while\n");
  std::printf("shaped delivery degrades gracefully; the flooder starves well-behaved traffic\n");
  std::printf("only when shaping is off; two shaped sinks split delivery evenly.\n");

  if (!bench::WriteBenchJson(out, "congestion_sweep", results)) {
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace diffusion

int main(int argc, char** argv) { return diffusion::Main(argc, argv); }
