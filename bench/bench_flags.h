// Tiny --key=value flag parsing for benchmark binaries.

#ifndef BENCH_BENCH_FLAGS_H_
#define BENCH_BENCH_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace diffusion {
namespace bench {

// Returns the value of "--name=..." from argv, or `fallback`.
inline int64_t IntFlag(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoll(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

// Returns the value of "--name=..." from argv, or `fallback`.
inline std::string StringFlag(int argc, char** argv, const char* name,
                              const std::string& fallback = "") {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline bool BoolFlag(int argc, char** argv, const char* name) {
  const std::string plain = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (plain == argv[i]) {
      return true;
    }
  }
  return false;
}

}  // namespace bench
}  // namespace diffusion

#endif  // BENCH_BENCH_FLAGS_H_
