// Query proxies (paper §5.3): shipping query programs inside attributes.
//
// "Researchers at Cornell have used our system to provide communication
// between an end-user database ... and query proxies in each sensor node.
// This application used attributes to identify sensors running query proxies
// and to pass query byte-codes to the proxies."
//
// Here, the user's interest carries a tiny query "program" as an
// uninterpreted blob attribute; a proxy at each sensor node watches for such
// interests, interprets the program (a comparison expression evaluated over
// the sensor's readings), and only ships readings that pass. Diffusion never
// looks inside the blob — naming moves the code, the edge executes it.
//
// Build & run:   ./build/examples/query_proxy

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/node.h"
#include "src/naming/keys.h"
#include "src/radio/propagation.h"
#include "src/sim/simulator.h"

using namespace diffusion;

namespace {

constexpr AttrKey kKeyQueryProgram = kKeyFirstApplication + 50;  // blob: the "byte-code"

// The proxy's "byte-code" format: "<field> <op> <value>", e.g.
// "intensity > 30". Deliberately tiny — the point is where it runs, not what
// it can express.
struct QueryProgram {
  std::string field;
  std::string op;
  double value = 0.0;

  static std::optional<QueryProgram> Parse(const std::vector<uint8_t>& code) {
    const std::string text(code.begin(), code.end());
    QueryProgram program;
    char field[32];
    char op[4];
    if (std::sscanf(text.c_str(), "%31s %3s %lf", field, op, &program.value) != 3) {
      return std::nullopt;
    }
    program.field = field;
    program.op = op;
    return program;
  }

  bool Evaluate(double reading) const {
    if (op == ">") {
      return reading > value;
    }
    if (op == "<") {
      return reading < value;
    }
    if (op == "==") {
      return reading == value;
    }
    return false;
  }
};

// A sensor node hosting a query proxy: dormant until a programmed interest
// arrives, then samples and filters locally.
class ProxySensor {
 public:
  ProxySensor(DiffusionNode* node, double base_reading)
      : node_(node), base_reading_(base_reading) {
    // Watch for interests that carry a program for seismic data.
    AttributeVector watch = {
        ClassEq(kClassInterest),
        Attribute::String(kKeyType, AttrOp::kEq, "seismic"),
    };
    (void)node_->AddFilter(std::move(watch), 10, [this](Message& message, FilterApi& api) {
      const bool is_interest = message.type == MessageType::kInterest;
      const AttributeVector attrs = message.attrs.items();
      api.SendMessageToNext(std::move(message));
      if (is_interest) {
        OnProgrammedInterest(attrs);
      }
    });
  }

  void Sample(int32_t sequence) {
    const double reading = base_reading_ + sequence * 3.0;
    ++samples_;
    if (!program_.has_value() || !program_->Evaluate(reading)) {
      ++locally_filtered_;
      return;  // the proxy decided this reading is not worth radio energy
    }
    (void)node_->Send(publication_, {
                                  Attribute::Int32(kKeySequence, AttrOp::kIs, sequence),
                                  Attribute::Float64(kKeyIntensity, AttrOp::kIs, reading),
                                  Attribute::Int32(kKeySourceId, AttrOp::kIs,
                                                   static_cast<int32_t>(node_->id())),
                              });
  }

  uint64_t locally_filtered() const { return locally_filtered_; }
  uint64_t samples() const { return samples_; }

 private:
  void OnProgrammedInterest(const AttributeVector& attrs) {
    const Attribute* code = FindActual(attrs, kKeyQueryProgram);
    if (code == nullptr || program_.has_value()) {
      return;
    }
    program_ = QueryProgram::Parse(*code->AsBlob());
    if (!program_.has_value()) {
      return;
    }
    publication_ = node_->Publish({Attribute::String(kKeyType, AttrOp::kIs, "seismic")});
    std::printf("t=%.2fs  proxy on node %u loaded program: %s %s %.1f\n",
                DurationToSeconds(node_->simulator().now()), node_->id(),
                program_->field.c_str(), program_->op.c_str(), program_->value);
  }

  DiffusionNode* node_;
  double base_reading_;
  std::optional<QueryProgram> program_;
  PublicationHandle publication_ = kInvalidHandle;
  uint64_t locally_filtered_ = 0;
  uint64_t samples_ = 0;
};

}  // namespace

int main() {
  Simulator sim(55);
  auto topology = std::make_unique<ExplicitTopology>();
  topology->AddSymmetricLink(1, 2);
  topology->AddSymmetricLink(2, 3);
  topology->AddSymmetricLink(2, 4);
  Channel channel(&sim, std::move(topology));

  DiffusionNode user(&sim, &channel, 1);
  DiffusionNode relay(&sim, &channel, 2);
  DiffusionNode sensor_a(&sim, &channel, 3);
  DiffusionNode sensor_b(&sim, &channel, 4);

  ProxySensor proxy_a(&sensor_a, 10.0);  // readings 10, 13, 16, ...
  ProxySensor proxy_b(&sensor_b, 30.0);  // readings 30, 33, 36, ...

  // The user's query ships the program "intensity > 30" to every proxy.
  const std::string code = "intensity > 30";
  (void)user.Subscribe(
      {
          ClassEq(kClassData),
          Attribute::String(kKeyType, AttrOp::kEq, "seismic"),
          // The identifying actual lets proxy filters (one-way match) see
          // this interest; the formal above does the data selection.
          Attribute::String(kKeyType, AttrOp::kIs, "seismic"),
          Attribute::Blob(kKeyQueryProgram, AttrOp::kIs,
                          std::vector<uint8_t>(code.begin(), code.end())),
      },
      [&sim](const AttributeVector& attrs) {
        const Attribute* reading = FindActual(attrs, kKeyIntensity);
        const Attribute* from = FindActual(attrs, kKeySourceId);
        std::printf("t=%.2fs  user: reading %.1f from node %d\n",
                    DurationToSeconds(sim.now()), reading->AsDouble().value_or(0),
                    static_cast<int>(from->AsInt().value_or(0)));
      });

  // The two sensors sample ~1 s apart: they are hidden terminals (each hears
  // only the relay), so simultaneous transmissions would collide there.
  for (int i = 0; i < 8; ++i) {
    sim.After((i + 1) * 2 * kSecond, [&, i] { proxy_a.Sample(i); });
    sim.After((i + 1) * 2 * kSecond + kSecond, [&, i] { proxy_b.Sample(i); });
  }
  sim.RunUntil(30 * kSecond);

  std::printf("\nproxy A filtered %llu/%llu readings locally; proxy B filtered %llu/%llu.\n",
              static_cast<unsigned long long>(proxy_a.locally_filtered()),
              static_cast<unsigned long long>(proxy_a.samples()),
              static_cast<unsigned long long>(proxy_b.locally_filtered()),
              static_cast<unsigned long long>(proxy_b.samples()));
  std::printf("Sub-threshold readings never cost a single radio transmission: the query\n"
              "program executed where the data was born.\n");
  return 0;
}
