// The paper's §3.2 worked example, end to end: tracking four-legged animals
// in a wilderness refuge.
//
// A user asks the network for four-legged-animal detections inside a
// rectangle. Sensors are not addressed — they discover the task by
// subscribing for subscriptions ("interests about interests"), switch their
// (expensive) detectors on only when a matching task arrives, and reply with
// attribute-named detections. A counting aggregation filter at the relay
// merges concurrent detections of the same animal from the two overlapping
// sensors and annotates the merged report with the detector count (§3.3).
//
// Build & run:   ./build/examples/animal_tracking

#include <cstdio>
#include <memory>

#include "src/apps/animal.h"
#include "src/core/node.h"
#include "src/filters/counting_aggregation_filter.h"
#include "src/naming/keys.h"
#include "src/radio/propagation.h"
#include "src/sim/simulator.h"

using namespace diffusion;

namespace {

// One deployed sensor node: dormant until a matching task arrives.
class AnimalSensor {
 public:
  AnimalSensor(DiffusionNode* node, double x, double y) : node_(node), x_(x), y_(y) {
    // "Sensors would watch for interests in animals by expressing interests
    // about interests" (§3.2).
    AttributeVector watch = {
        ClassEq(kClassInterest),
        Attribute::String(kKeyType, AttrOp::kIs, "four-legged-animal-search"),
        Attribute::Float64(kKeyXCoord, AttrOp::kIs, x),
        Attribute::Float64(kKeyYCoord, AttrOp::kIs, y),
        ClassIs(kClassData),
    };
    (void)node_->Subscribe(std::move(watch), [this](const AttributeVector& interest) {
      OnTask(interest);
    });
  }

  bool active() const { return active_; }

  // The (simulated) detector saw something.
  void Detect(const char* instance, int32_t event_id, double confidence) {
    if (!active_) {
      return;  // detector is off: no task has arrived
    }
    AttributeVector detection = {
        Attribute::String(kKeyInstance, AttrOp::kIs, instance),
        Attribute::Float64(kKeyXCoord, AttrOp::kIs, x_),
        Attribute::Float64(kKeyYCoord, AttrOp::kIs, y_),
        Attribute::Float64(kKeyIntensity, AttrOp::kIs, 0.6),
        Attribute::Float64(kKeyConfidence, AttrOp::kIs, confidence),
        Attribute::Int32(kKeySequence, AttrOp::kIs, event_id),
        Attribute::Int32(kKeySourceId, AttrOp::kIs, static_cast<int32_t>(node_->id())),
        Attribute::Int64(kKeyTimestamp, AttrOp::kIs, node_->simulator().now()),
    };
    (void)node_->Send(publication_, detection);
  }

 private:
  void OnTask(const AttributeVector& interest) {
    if (active_) {
      return;
    }
    active_ = true;
    const Attribute* interval = FindActual(interest, kKeyInterval);
    std::printf("t=%.2fs  sensor %u activated by task (interval %d ms)\n",
                DurationToSeconds(node_->simulator().now()), node_->id(),
                interval != nullptr
                    ? static_cast<int>(interval->AsInt().value_or(0))
                    : -1);
    publication_ = node_->Publish({
        Attribute::String(kKeyType, AttrOp::kIs, "four-legged-animal-search"),
    });
  }

  DiffusionNode* node_;
  double x_;
  double y_;
  bool active_ = false;
  PublicationHandle publication_ = kInvalidHandle;
};

}  // namespace

int main() {
  Simulator sim(7);
  // user(1) - relay(2) - two sensors (3, 4) with overlapping coverage.
  auto topology = std::make_unique<ExplicitTopology>();
  topology->AddSymmetricLink(1, 2);
  topology->AddSymmetricLink(2, 3);
  topology->AddSymmetricLink(2, 4);
  topology->AddSymmetricLink(3, 4);
  Channel channel(&sim, std::move(topology));

  DiffusionNode user(&sim, &channel, 1);
  DiffusionNode relay(&sim, &channel, 2);
  DiffusionNode sensor_node_a(&sim, &channel, 3);
  DiffusionNode sensor_node_b(&sim, &channel, 4);

  AnimalSensor sensor_a(&sensor_node_a, 125.0, 220.0);
  AnimalSensor sensor_b(&sensor_node_b, 140.0, 230.0);

  // In-network processing at the relay: merge concurrent detections of the
  // same event and count the detecting sensors (§3.3).
  // Fused confidence uses §5.1's independent-evidence rule: detections of
  // 0.85 and 0.72 combine to 1 - 0.15·0.28 ≈ 0.96.
  CountingAggregationFilter merger(
      &relay,
      {ClassEq(kClassData),
       Attribute::String(kKeyType, AttrOp::kEq, "four-legged-animal-search")},
      /*priority=*/10, /*window=*/500 * kMillisecond, ConfidenceMerge::kProbabilisticOr);

  // The user's query — exactly the interest of §3.2 / Figure 10's style:
  // (type EQ four-legged-animal-search, interval IS 20ms, duration IS 10s,
  //  x GE -100, x LE 200, y GE 100, y LE 400).
  (void)user.Subscribe(FourLeggedAnimalInterest(), [&sim](const AttributeVector& detection) {
    const Attribute* instance = FindActual(detection, kKeyInstance);
    const Attribute* confidence = FindActual(detection, kKeyConfidence);
    const Attribute* count = FindActual(detection, kKeyDetectionCount);
    std::printf("t=%.2fs  user: detected %s (confidence %.2f, %d sensors)\n",
                DurationToSeconds(sim.now()),
                instance != nullptr ? instance->AsString()->c_str() : "?",
                confidence != nullptr ? confidence->AsDouble().value_or(0) : 0.0,
                count != nullptr ? static_cast<int>(count->AsInt().value_or(1)) : 1);
  });

  // An elephant walks by at t=3s and t=9s; both sensors see it. Note sensor
  // B is at (140, 230) — inside the query rectangle, so its detections
  // match; had it been outside, matching alone would have silenced it.
  for (SimTime when : {3 * kSecond, 9 * kSecond}) {
    sim.At(when, [&, when] {
      const int32_t event_id = static_cast<int32_t>(when / kSecond);
      sensor_a.Detect("elephant", event_id, 0.85);
      sensor_b.Detect("elephant", event_id, 0.72);
    });
  }

  sim.RunUntil(20 * kSecond);

  std::printf("\n%llu aggregate(s) emitted by the relay filter; %llu duplicate detection(s) "
              "merged in-network.\n",
              static_cast<unsigned long long>(merger.aggregates_emitted()),
              static_cast<unsigned long long>(merger.events_merged()));
  return 0;
}
