// Reliable transfer of a large, persistent object (§3.1's retransmission
// scheme) across a lossy multihop network.
//
// A 4 KB "calibration table" moves from a sensor node to a user over three
// lossy hops. Chunks are ordinary attribute-named data; the receiver's NACK
// is an ordinary *interest* whose chunk-range formals select exactly the
// missing pieces, and the sender's retransmissions follow ordinary
// gradients. Watch the repair rounds shrink the missing set.
//
// Build & run:   ./build/examples/reliable_transfer

#include <cstdio>
#include <memory>

#include "src/apps/blob_transfer.h"
#include "src/core/node.h"
#include "src/radio/propagation.h"
#include "src/sim/simulator.h"

using namespace diffusion;

int main() {
  Simulator sim(41);
  auto topology = std::make_unique<ExplicitTopology>();
  LinkQuality lossy;
  // Per-fragment loss compounds: a 5-fragment chunk survives one hop with
  // probability 0.97^5 ≈ 0.86, the full 3-hop path with ≈ 0.63 — about every
  // third chunk dies somewhere en route.
  lossy.delivery_probability = 0.97;
  topology->AddSymmetricLink(1, 2, lossy);
  topology->AddSymmetricLink(2, 3, lossy);
  topology->AddSymmetricLink(3, 4, lossy);
  Channel channel(&sim, std::move(topology));

  DiffusionConfig config;
  config.exploratory_every = 5;
  std::vector<std::unique_ptr<DiffusionNode>> nodes;
  for (NodeId id = 1; id <= 4; ++id) {
    nodes.push_back(std::make_unique<DiffusionNode>(&sim, &channel, id, NodeOptions{.diffusion = config}));
  }

  std::vector<uint8_t> object(4096);
  for (size_t i = 0; i < object.size(); ++i) {
    object[i] = static_cast<uint8_t>((i * 31) ^ (i >> 8));
  }

  BlobSender sender(nodes[3].get(), /*object_id=*/1, object);
  std::printf("object: %zu bytes in %zu chunks, 3 lossy hops (0.97/fragment)\n\n", object.size(),
              sender.chunk_count());

  BlobReceiverConfig receiver_config;
  receiver_config.repair_delay = 10 * kSecond;
  BlobReceiver receiver(nodes[0].get(), 1, receiver_config);
  bool done = false;
  receiver.Start([&](const std::vector<uint8_t>& data) {
    done = true;
    std::printf("\nt=%.1fs  COMPLETE: %zu bytes, intact=%s, after %d repair round(s)\n",
                DurationToSeconds(sim.now()), data.size(), data == object ? "yes" : "NO",
                receiver.repair_rounds());
  });
  sim.RunUntil(kSecond);
  sender.Start();

  for (int tick = 10; tick <= 600 && !done; tick += 10) {
    sim.RunUntil(static_cast<SimDuration>(tick) * kSecond);
    if (done) {
      break;
    }
    const auto spans = receiver.MissingSpans();
    std::printf("t=%3ds  chunks %2zu/%zu", tick, receiver.chunks_received(),
                sender.chunk_count());
    if (!spans.empty()) {
      std::printf("  missing:");
      for (const auto& [lo, hi] : spans) {
        if (lo == hi) {
          std::printf(" %d", lo);
        } else {
          std::printf(" %d-%d", lo, hi);
        }
      }
    }
    std::printf("  (repair round %d)\n", receiver.repair_rounds());
  }

  std::printf("\nsender transmitted %llu chunk messages total (%zu unique) and answered %llu "
              "repair request(s).\n",
              static_cast<unsigned long long>(sender.chunks_sent()), sender.chunk_count(),
              static_cast<unsigned long long>(sender.repair_requests()));
  return done ? 0 : 1;
}
