// Tiered deployment (§4.3): a mote tier running micro-diffusion, bridged by
// a gateway into a full-diffusion tier.
//
// Motes run the tag-based micro engine (5 static gradients, a 10-entry
// 2-byte packet cache) and speak a wire format the full implementation can
// parse. The gateway holds the "network intelligence": it waits for a
// matching attribute interest in the full tier before tasking the motes at
// all, then republishes mote readings as attribute-named data.
//
// Build & run:   ./build/examples/micro_tier

#include <cstdio>
#include <memory>

#include "src/core/node.h"
#include "src/micro/micro_gateway.h"
#include "src/micro/micro_node.h"
#include "src/naming/keys.h"
#include "src/radio/propagation.h"
#include "src/sim/simulator.h"

using namespace diffusion;

int main() {
  Simulator sim(3);

  // Full tier: user(1) - relay(2) - gateway(3). Mote tier: gateway's mote
  // radio (100) - relay mote (101) - two photo-sensor motes (102, 103).
  auto upper_topology = std::make_unique<ExplicitTopology>();
  upper_topology->AddSymmetricLink(1, 2);
  upper_topology->AddSymmetricLink(2, 3);
  Channel upper(&sim, std::move(upper_topology));

  auto mote_topology = std::make_unique<ExplicitTopology>();
  mote_topology->AddSymmetricLink(100, 101);
  mote_topology->AddSymmetricLink(101, 102);
  mote_topology->AddSymmetricLink(101, 103);
  Channel motes(&sim, std::move(mote_topology));

  DiffusionNode user(&sim, &upper, 1);
  DiffusionNode relay(&sim, &upper, 2);
  DiffusionNode gateway_node(&sim, &upper, 3);
  MicroNode gateway_mote(&sim, &motes, 100);
  MicroNode mote_relay(&sim, &motes, 101);
  MicroNode photo_a(&sim, &motes, 102);
  MicroNode photo_b(&sim, &motes, 103);

  std::printf("micro engine: %zu gradient slots, %zu-entry packet cache, %zu bytes of state\n\n",
              MicroNode::kMaxGradients, MicroNode::kCacheEntries, MicroNode::StateBytes());

  // The mote relay's "limited filter" (§4.3): drop too-dark readings
  // in-network to save mote-tier bandwidth, and clamp saturated ones.
  mote_relay.SetTagFilter([](MicroTag, int32_t* value) {
    if (*value < 60) {
      return false;  // too dark to matter
    }
    if (*value > 200) {
      *value = 200;
    }
    return true;
  });

  constexpr MicroTag kPhotoTag = 1;
  MicroGateway gateway(&gateway_node, &gateway_mote);
  gateway.Bridge(kPhotoTag, {Attribute::String(kKeyType, AttrOp::kIs, "photo")});

  sim.RunUntil(kSecond);
  std::printf("t=1s   mote tier tasked yet? %s (no full-tier interest so far)\n",
              gateway.TagTasked(kPhotoTag) ? "yes" : "no");

  (void)user.Subscribe({ClassEq(kClassData), Attribute::String(kKeyType, AttrOp::kEq, "photo")},
                 [&sim](const AttributeVector& attrs) {
                   const Attribute* value = FindActual(attrs, kKeyMicroValue);
                   const Attribute* origin = FindActual(attrs, kKeySourceId);
                   std::printf("t=%.1fs  user: photo reading %d from mote %d\n",
                               DurationToSeconds(sim.now()),
                               static_cast<int>(value != nullptr ? value->AsInt().value_or(-1)
                                                                 : -1),
                               static_cast<int>(origin != nullptr ? origin->AsInt().value_or(-1)
                                                                  : -1));
                 });
  sim.RunUntil(3 * kSecond);
  std::printf("t=3s   mote tier tasked now? %s (interest arrived and was bridged)\n\n",
              gateway.TagTasked(kPhotoTag) ? "yes" : "no");

  // Light levels: mote A ramps, mote B stays flat (and is mostly filtered).
  // The motes sample half a second apart — two motes that are hidden from
  // each other (both only hear the relay) would otherwise collide there.
  const int32_t a_levels[] = {100, 140, 180, 181, 230};
  const int32_t b_levels[] = {50, 51, 52, 51, 90};
  for (int i = 0; i < 5; ++i) {
    sim.After((i + 1) * 3 * kSecond, [&, i] { photo_a.SendData(kPhotoTag, a_levels[i]); });
    sim.After((i + 1) * 3 * kSecond + 500 * kMillisecond,
              [&, i] { photo_b.SendData(kPhotoTag, b_levels[i]); });
  }
  sim.RunUntil(30 * kSecond);

  std::printf("\nbridged %llu readings; the mote relay's filter suppressed %llu "
              "insignificant ones in-network.\n",
              static_cast<unsigned long long>(gateway.readings_bridged()),
              static_cast<unsigned long long>(mote_relay.stats().filter_suppressed));
  std::printf("relay (full tier) forwarded %llu messages without understanding 'photo' — it\n"
              "only matched attributes.\n",
              static_cast<unsigned long long>(relay.stats().messages_forwarded));
  return 0;
}
