// The §5.2/§6.2 nested-query scenario: audio sensing cued by light sensors,
// run in both placements side by side on the reconstructed ISI testbed.
//
//   nested — the user tasks the audio sensor; the audio sensor sub-tasks the
//            lights directly (Figure 6b). Light chatter stays one hop from
//            the lights.
//   flat   — the one-level query (Figure 6a): light reports cross the whole
//            network to the user, who correlates them with the audio stream.
//
// Build & run:   ./build/examples/nested_query

#include <cstdio>

#include "src/testbed/experiments.h"

using namespace diffusion;

int main() {
  std::printf("Nested vs flat queries, 4 light sensors, 10-minute runs on the 14-node "
              "testbed:\n\n");
  for (QueryMode mode : {QueryMode::kNested, QueryMode::kFlat}) {
    Fig9Params params;
    params.lights = 4;
    params.mode = mode;
    params.duration = 10 * kMinute;
    params.seed = 23;
    const Fig9Result result = RunFig9(params);
    std::printf("%-7s  delivered %2zu/%2zu light-change events (%.0f%%), %llu diffusion bytes\n",
                mode == QueryMode::kNested ? "nested" : "flat", result.delivered_events,
                result.possible_events, result.delivered_fraction * 100.0,
                static_cast<unsigned long long>(result.diffusion_bytes));
  }
  std::printf("\nThe nested query localizes the high-rate light traffic next to the audio\n"
              "sensor instead of hauling it across the network: more events survive and\n"
              "fewer bytes move (§6.2).\n");
  return 0;
}
