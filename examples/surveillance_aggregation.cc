// The §5.1/§6.1 surveillance scenario on the reconstructed ISI testbed
// (Figure 7): four overlapping sensors detect the same events; duplicate-
// suppression filters aggregate the reports in-network on their way to the
// sink at node 28. Prints live traffic accounting so the aggregation effect
// is visible.
//
// Build & run:   ./build/examples/surveillance_aggregation [--no-suppression]

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/apps/surveillance.h"
#include "src/core/node.h"
#include "src/filters/duplicate_suppression_filter.h"
#include "src/testbed/topology.h"

using namespace diffusion;

int main(int argc, char** argv) {
  bool suppression = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-suppression") == 0) {
      suppression = false;
    }
  }

  Simulator sim(17);
  const TestbedLayout layout = IsiTestbedLayout();
  Channel channel(&sim, MakePropagation(layout, 0.98));

  DiffusionConfig dconfig;
  dconfig.forward_delay_jitter = 300 * kMillisecond;
  const RadioConfig rconfig = TestbedRadioConfig();
  std::map<NodeId, std::unique_ptr<DiffusionNode>> nodes;
  for (NodeId id : layout.node_ids) {
    nodes[id] = std::make_unique<DiffusionNode>(&sim, &channel, id, NodeOptions{.diffusion = dconfig, .radio = rconfig});
  }

  SurveillanceConfig sconfig;
  std::vector<std::unique_ptr<DuplicateSuppressionFilter>> filters;
  if (suppression) {
    for (auto& [id, node] : nodes) {
      filters.push_back(std::make_unique<DuplicateSuppressionFilter>(
          node.get(), SurveillanceDataFilterAttrs(sconfig), 10));
    }
  }

  SurveillanceSink sink(nodes.at(kIsiSinkNode).get(), sconfig);
  std::vector<std::unique_ptr<SurveillanceSource>> sources;
  for (NodeId id : kIsiSourceNodes) {
    sources.push_back(std::make_unique<SurveillanceSource>(nodes.at(id).get(), sconfig,
                                                           static_cast<int32_t>(id)));
  }

  std::printf("Surveillance on the 14-node testbed: sink at node %u, sources at 25/16/22/13,\n",
              kIsiSinkNode);
  std::printf("one 112-byte event per 6 s, suppression filters %s.\n\n",
              suppression ? "ON at every node" : "OFF");

  sink.Start();
  sim.After(5 * kSecond, [&sources] {
    for (auto& source : sources) {
      source->Start();
    }
  });

  uint64_t last_bytes = 0;
  for (int minute = 1; minute <= 10; ++minute) {
    sim.RunUntil(static_cast<SimDuration>(minute) * kMinute);
    uint64_t total_bytes = 0;
    uint64_t suppressed = 0;
    for (auto& [id, node] : nodes) {
      total_bytes += node->stats().bytes_sent;
    }
    for (auto& filter : filters) {
      suppressed += filter->suppressed();
    }
    std::printf("t=%2d min  events@sink=%3zu  diffusion-bytes=%7llu (+%llu)  suppressed=%llu\n",
                minute, sink.distinct_events(),
                static_cast<unsigned long long>(total_bytes),
                static_cast<unsigned long long>(total_bytes - last_bytes),
                static_cast<unsigned long long>(suppressed));
    last_bytes = total_bytes;
  }

  const double bytes_per_event =
      sink.distinct_events() > 0 ? static_cast<double>(last_bytes) / sink.distinct_events() : 0;
  std::printf("\n%.0f bytes sent per distinct event. Re-run with --no-suppression to see the\n"
              "unaggregated cost (Figure 8's comparison).\n",
              bytes_per_event);
  return 0;
}
