// Quickstart: the smallest complete diffusion network.
//
// Three nodes in a line — a sink, a relay, and a source. The sink subscribes
// to temperature readings by attribute; the source publishes them. Nobody
// addresses anybody: the interest names the *data* (type EQ "temperature"),
// diffusion floods it, gradients form, the first (exploratory) reading
// reinforces a path, and subsequent readings flow hop-by-hop along it.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "src/core/node.h"
#include "src/naming/keys.h"
#include "src/radio/propagation.h"
#include "src/sim/simulator.h"

using namespace diffusion;

int main() {
  // 1. A simulated world: three nodes, links 1-2 and 2-3.
  Simulator sim(/*seed=*/1);
  auto topology = std::make_unique<ExplicitTopology>();
  topology->AddSymmetricLink(1, 2);
  topology->AddSymmetricLink(2, 3);
  Channel channel(&sim, std::move(topology));

  DiffusionNode sink(&sim, &channel, /*id=*/1);
  DiffusionNode relay(&sim, &channel, /*id=*/2);
  DiffusionNode source(&sim, &channel, /*id=*/3);

  // 2. The sink subscribes to data it can name: temperature readings above
  //    20 degrees. "class EQ data" and "type EQ temperature" are formals the
  //    data's actuals must satisfy; so is the threshold.
  (void)sink.Subscribe(
      {
          ClassEq(kClassData),
          Attribute::String(kKeyType, AttrOp::kEq, "temperature"),
          Attribute::Float64(kKeyIntensity, AttrOp::kGt, 20.0),
      },
      [&sim](const AttributeVector& attrs) {
        const Attribute* reading = FindActual(attrs, kKeyIntensity);
        std::printf("t=%.2fs  sink got temperature %.1f\n",
                    DurationToSeconds(sim.now()),
                    reading != nullptr ? reading->AsDouble().value_or(0) : 0);
      });

  // 3. The source declares what it produces and sends readings. Readings at
  //    or below 20.0 will not match the interest and are never delivered.
  const PublicationHandle pub =
      source.Publish({Attribute::String(kKeyType, AttrOp::kIs, "temperature")});
  const double readings[] = {25.5, 19.0, 22.3, 30.1, 18.2, 27.7};
  for (int i = 0; i < 6; ++i) {
    sim.After((i + 1) * 2 * kSecond, [&source, pub, &readings, i] {
      (void)source.Send(pub, {Attribute::Float64(kKeyIntensity, AttrOp::kIs, readings[i])});
    });
  }

  // 4. Run the world.
  sim.RunUntil(20 * kSecond);

  std::printf("\nsource sent %llu data messages; relay forwarded %llu; readings <= 20 "
              "were filtered by matching alone.\n",
              static_cast<unsigned long long>(source.stats().data_originated),
              static_cast<unsigned long long>(relay.stats().messages_forwarded));
  return 0;
}
